package analysis

import (
	"go/token"
	"testing"
)

func TestMatchSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"molcache/internal/cache", "internal/cache", true},
		{"internal/cache", "internal/cache", true},
		{"molcache/internal/analysis/testdata/src/internal/cache", "internal/cache", true},
		{"molcache/internal/cachex", "internal/cache", false},
		{"molcache/xinternal/cache", "internal/cache", false},
		{"molcache/internal/cache/sub", "internal/cache", false},
	}
	for _, c := range cases {
		if got := matchSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("matchSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestIgnoreSetCovers(t *testing.T) {
	s := ignoreSet{{rule: "determinism", file: "f.go", line: 10}: true}
	if !s.covers("determinism", token.Position{Filename: "f.go", Line: 10}) {
		t.Error("directive must cover its own line")
	}
	if !s.covers("determinism", token.Position{Filename: "f.go", Line: 11}) {
		t.Error("directive must cover the line below")
	}
	if s.covers("determinism", token.Position{Filename: "f.go", Line: 12}) {
		t.Error("directive must not cover two lines below")
	}
	if s.covers("panic-discipline", token.Position{Filename: "f.go", Line: 10}) {
		t.Error("directive must not cover other rules")
	}
}

func TestRegisteredRules(t *testing.T) {
	want := []string{
		"concurrency",
		"determinism",
		"hotpath-alloc",
		"lane-confinement",
		"lock-copy",
		"lock-order",
		"map-order",
		"panic-discipline",
		"sink-errors",
		"snapshot-coverage",
		"telemetry-names",
	}
	got := RuleNames()
	if len(got) != len(want) {
		t.Fatalf("RuleNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RuleNames() = %v, want %v", got, want)
		}
	}
	for _, r := range Rules() {
		if r.Doc() == "" {
			t.Errorf("rule %s has no doc line", r.Name())
		}
	}
}

// TestRepoIsClean runs every rule over the production module — the same
// sweep `make lint` does — and requires zero findings, so a violation
// that sneaks into the tree fails `go test` even when nobody runs
// molvet by hand.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.DiscoverPackages(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	var loaded []*Package
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		loaded = append(loaded, pkg)
		for _, d := range Run(cfg, pkg, nil) {
			t.Errorf("%s", d)
		}
	}
	// The cross-package dataflow rules run once over the whole sweep,
	// exactly as cmd/molvet does.
	for _, d := range RunModule(cfg, NewModule(loaded), nil) {
		t.Errorf("%s", d)
	}
}
