package analysis

// hotpath-alloc: the access fast path stays allocation-free. The
// 0 allocs/op numbers behind BENCH_access and BENCH_shard are a load-
// bearing property (the differential oracle replays millions of
// accesses), and they are one innocent fmt.Errorf away from quietly
// regressing. This rule walks the call-graph closure of the configured
// HotPathRoots (Cache.Access / AccessBatch and the shard engine's batch
// entry), bounded to HotPathPackages and cut at the sanctioned
// HotPathStops (growth, retirement, corruption and trace-emission slow
// paths), and flags the allocation idioms the compiler will not keep on
// the stack:
//
//   - fmt package calls (Sprintf/Errorf format-and-box on every call)
//   - escaping composite literals (&T{...})
//   - interface boxing: a concrete non-pointer argument passed to an
//     interface parameter
//   - append whose destination is not a plain local variable
//     (field- or global-rooted appends grow retained buffers)
//
// Arguments of panic calls are exempt: a failing run may allocate.
//
// Soundness caveats: closures and func values called indirectly are
// walked only where the literal is created; stack-vs-heap is decided
// by the real escape analysis, so a flagged site can be a false
// positive the benchmarks would tolerate — the stop list and reasoned
// ignores are the pressure valve.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() { Register(hotpathRule{}) }

type hotpathRule struct{}

func (hotpathRule) Name() string { return "hotpath-alloc" }

func (hotpathRule) Doc() string {
	return "the Access/AccessBatch fast-path closure is free of fmt calls, escaping literals, boxing and retained appends"
}

// Check is a no-op: the rule runs once per module via CheckModule.
func (hotpathRule) Check(cfg Config, pkg *Package) []Diagnostic { return nil }

func (hotpathRule) CheckModule(cfg Config, mod *Module) []Diagnostic {
	g := mod.CallGraph()
	var roots []*FuncNode
	for _, n := range g.Nodes() {
		if n.Obj != nil && matchFuncName(n.Obj, cfg.HotPathRoots) &&
			matchAny(n.Pkg.Path, cfg.HotPathPackages) {
			roots = append(roots, n)
		}
	}
	inScope := func(n *FuncNode) bool {
		if !matchAny(n.Pkg.Path, cfg.HotPathPackages) {
			return false
		}
		return n.Obj == nil || !matchFuncName(n.Obj, cfg.HotPathStops)
	}
	reach := g.Reachable(roots, inScope)
	var out []Diagnostic
	for _, n := range g.Nodes() { // deterministic order
		if reach[n] && inScope(n) {
			out = append(out, checkHotBody(n)...)
		}
	}
	return out
}

// checkHotBody scans one fast-path function body. Nested literal
// bodies are skipped: they are their own graph nodes and are scanned
// when reached.
func checkHotBody(n *FuncNode) []Diagnostic {
	p := n.Pkg
	exempt := panicArgRanges(n.Body)
	var out []Diagnostic
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			out = append(out, diag(p, lit, "hotpath-alloc",
				"closure created on the access fast path allocates; hoist it or restructure"))
			return false
		}
		if exempt.covers(x.Pos()) {
			return true
		}
		switch x := x.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
					out = append(out, diag(p, x, "hotpath-alloc",
						"escaping composite literal allocates on the access fast path"))
				}
			}
		case *ast.AssignStmt:
			out = append(out, checkHotAppend(p, x)...)
		case *ast.CallExpr:
			out = append(out, checkHotCall(p, x)...)
		}
		return true
	})
	return out
}

// checkHotCall flags fmt calls and interface boxing at one call site.
func checkHotCall(p *Package, call *ast.CallExpr) []Diagnostic {
	obj, _ := p.calleeObject(call).(*types.Func)
	if obj == nil {
		return nil
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return []Diagnostic{diag(p, call, "hotpath-alloc",
			"fmt.%s call on the access fast path formats and allocates; precompute or move off the hot path", obj.Name())}
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	var out []Diagnostic
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice as-is
			} else if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = slice.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.typeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without allocating
		}
		out = append(out, diag(p, arg, "hotpath-alloc",
			"boxing %s into interface parameter of %s allocates on the access fast path", at.String(), funcDisplayName(obj)))
	}
	return out
}

// checkHotAppend flags appends whose destination is retained state: any
// LHS that is not a plain local identifier.
func checkHotAppend(p *Package, as *ast.AssignStmt) []Diagnostic {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []Diagnostic
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		lhs := ast.Unparen(as.Lhs[i])
		if base, ok := lhs.(*ast.Ident); ok {
			if v, isVar := lookupIdent(p, base).(*types.Var); isVar && !packageLevel(v) {
				continue // growing a local slice: bounded by the caller
			}
		}
		out = append(out, diag(p, call, "hotpath-alloc",
			"append to retained state on the access fast path grows an unbounded buffer; preallocate or move off the hot path"))
	}
	return out
}

// posRanges is a set of source ranges.
type posRanges []struct{ lo, hi token.Pos }

func (r posRanges) covers(pos token.Pos) bool {
	for _, rr := range r {
		if rr.lo <= pos && pos <= rr.hi {
			return true
		}
	}
	return false
}

// panicArgRanges collects the argument ranges of panic calls in body:
// a failing run is allowed to allocate its message.
func panicArgRanges(body ast.Node) posRanges {
	var out posRanges
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			out = append(out, struct{ lo, hi token.Pos }{call.Lparen, call.Rparen})
		}
		return true
	})
	return out
}
