package analysis

import (
	"strings"
	"testing"
)

// TestParseDirectiveTable walks every branch of the parser: both verbs
// well-formed, each malformed shape with its exact diagnostic, and
// non-directive comments that must be skipped entirely.
func TestParseDirectiveTable(t *testing.T) {
	cases := []struct {
		text    string
		ok      bool
		kind    directiveKind
		rule    string
		reason  string
		problem string
	}{
		// Well-formed.
		{
			text: "//molvet:ignore determinism seeded RNG is part of the spec",
			ok:   true, kind: directiveIgnore, rule: "determinism",
			reason: "seeded RNG is part of the spec",
		},
		{
			text: "//molvet:ignore lane-confinement merge runs after the join barrier",
			ok:   true, kind: directiveIgnore, rule: "lane-confinement",
			reason: "merge runs after the join barrier",
		},
		{
			text: "//molvet:transient rebuilt from the restored clock",
			ok:   true, kind: directiveTransient,
			reason: "rebuilt from the restored clock",
		},
		// Tabs separate the verb just like spaces.
		{
			text: "//molvet:transient\trebuilt lazily",
			ok:   true, kind: directiveTransient, reason: "rebuilt lazily",
		},
		// Malformed: missing pieces.
		{
			text: "//molvet:ignore",
			ok:   true, kind: directiveIgnore,
			problem: "molvet:ignore needs a rule name and a reason",
		},
		{
			text: "//molvet:ignore   ",
			ok:   true, kind: directiveIgnore,
			problem: "molvet:ignore needs a rule name and a reason",
		},
		{
			text: "//molvet:ignore determinism",
			ok:   true, kind: directiveIgnore, rule: "determinism",
			problem: "molvet:ignore determinism has no reason; explain the exception",
		},
		{
			text: "//molvet:ignore no-such-rule because reasons",
			ok:   true, kind: directiveIgnore, rule: "no-such-rule",
			problem: "molvet:ignore names unknown rule no-such-rule",
		},
		{
			text: "//molvet:transient",
			ok:   true, kind: directiveTransient,
			problem: "molvet:transient has no reason; explain why the field is not checkpointed",
		},
		{
			text: "//molvet:transient \t ",
			ok:   true, kind: directiveTransient,
			problem: "molvet:transient has no reason; explain why the field is not checkpointed",
		},
		// Malformed: bad verbs.
		{
			text:    "//molvet:",
			ok:      true,
			problem: "molvet: directive has no verb (want ignore or transient)",
		},
		{
			text:    "//molvet: ignore determinism leading space",
			ok:      true,
			problem: "molvet: directive has no verb (want ignore or transient)",
		},
		{
			text:    "//molvet:ignored determinism typo in the verb",
			ok:      true,
			problem: "molvet:ignored is not a directive (want ignore or transient)",
		},
		{
			text:    "//molvet:suppress determinism wrong verb",
			ok:      true,
			problem: "molvet:suppress is not a directive (want ignore or transient)",
		},
		// Not directives at all.
		{text: "// molvet:ignore determinism spaced-out prefix"},
		{text: "//nolint:all"},
		{text: "// plain comment"},
		{text: ""},
	}
	for _, c := range cases {
		d, ok, problem := parseDirective(c.text)
		if ok != c.ok {
			t.Errorf("parseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if problem != c.problem {
			t.Errorf("parseDirective(%q) problem = %q, want %q", c.text, problem, c.problem)
		}
		if d.kind != c.kind {
			t.Errorf("parseDirective(%q) kind = %v, want %v", c.text, d.kind, c.kind)
		}
		if d.rule != c.rule {
			t.Errorf("parseDirective(%q) rule = %q, want %q", c.text, d.rule, c.rule)
		}
		if problem == "" && d.reason != c.reason {
			t.Errorf("parseDirective(%q) reason = %q, want %q", c.text, d.reason, c.reason)
		}
	}
}

// FuzzParseDirective holds the parser to its contract on arbitrary
// input: never panic, and keep the invariants that make directives()
// trustworthy — a well-formed result excludes a problem, a recognized
// ignore either names a registered rule or reports one, and reasons
// never come back empty for accepted directives.
func FuzzParseDirective(f *testing.F) {
	f.Add("//molvet:ignore determinism seeded RNG is part of the spec")
	f.Add("//molvet:transient rebuilt from the restored clock")
	f.Add("//molvet:ignore")
	f.Add("//molvet:transient")
	f.Add("//molvet:")
	f.Add("//molvet:bogus verb")
	f.Add("//molvet:ignore no-such-rule because")
	f.Add("//molvet:transient\t\ttabs")
	f.Add("// not a directive")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, problem := parseDirective(text)
		if !ok {
			if problem != "" {
				t.Fatalf("unrecognized comment %q produced problem %q", text, problem)
			}
			if strings.HasPrefix(text, directivePrefix) {
				t.Fatalf("directive-prefixed comment %q was not recognized", text)
			}
			return
		}
		if !strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("non-prefixed comment %q was recognized as a directive", text)
		}
		if problem != "" {
			// Malformed: the message must carry the molvet marker so it is
			// findable in diagnostics.
			if !strings.HasPrefix(problem, "molvet:") {
				t.Fatalf("problem %q lacks the molvet prefix", problem)
			}
			return
		}
		// Accepted: the invariants each consumer relies on.
		switch d.kind {
		case directiveIgnore:
			if _, known := rules[d.rule]; !known {
				t.Fatalf("accepted ignore names unregistered rule %q", d.rule)
			}
			if d.reason == "" {
				t.Fatal("accepted ignore has an empty reason")
			}
		case directiveTransient:
			if d.reason == "" {
				t.Fatal("accepted transient has an empty reason")
			}
		default:
			t.Fatalf("accepted directive has unknown kind %d", d.kind)
		}
	})
}
