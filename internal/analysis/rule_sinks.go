package analysis

import (
	"go/ast"
	"go/types"
)

// sinkErrorsRule forbids dropping errors from Write, Flush and Close on
// the telemetry output path. A tracer whose sink silently failed is
// worse than no tracer: the run looks observed but the evidence is
// gone. The rule covers statement-position calls (including go/defer)
// that discard a returned error where the receiver is a telemetry type
// (Sink implementations, the Tracer) — and, inside internal/telemetry
// itself, any Write/Flush/Close receiver, since that package owns the
// files and writers behind the sinks.
type sinkErrorsRule struct{}

func init() { Register(sinkErrorsRule{}) }

func (sinkErrorsRule) Name() string { return "sink-errors" }

func (sinkErrorsRule) Doc() string {
	return "errors from Write/Flush/Close on telemetry sinks must be handled (or explicitly assigned to _)"
}

var sinkMethods = map[string]bool{"Write": true, "Flush": true, "Close": true}

func (r sinkErrorsRule) Check(cfg Config, pkg *Package) []Diagnostic {
	inTelemetry := matchSuffix(pkg.Path, "internal/telemetry")
	var out []Diagnostic
	check := func(call *ast.CallExpr, via string) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !sinkMethods[sel.Sel.Name] {
			return
		}
		recv := pkg.receiverType(call)
		if recv == nil {
			return
		}
		if !inTelemetry && !typeDeclaredIn(recv, "internal/telemetry") {
			return
		}
		if !returnsError(pkg, call) {
			return
		}
		out = append(out, diag(pkg, call, r.Name(),
			"%s%s.%s error discarded; handle it or assign to _ deliberately",
			via, types.TypeString(recv, types.RelativeTo(pkg.Types)), sel.Sel.Name))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.GoStmt:
				check(stmt.Call, "go ")
			case *ast.DeferStmt:
				check(stmt.Call, "defer ")
			}
			return true
		})
	}
	return out
}

// returnsError reports whether the call's (single or last) result is an
// error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErr(t.At(t.Len()-1).Type())
	default:
		return isErr(t)
	}
}
