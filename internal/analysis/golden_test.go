package analysis

// Golden-file tests for molvet's diagnostics: each seeded fixture
// package under testdata/src is loaded exactly the way cmd/molvet loads
// production packages, every rule runs, and the rendered diagnostics
// (module-root-relative paths) are diffed against testdata/*.golden.
// Regenerate with:
//
//	go test ./internal/analysis -run Golden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current diagnostics")

// checkGolden diffs got against testdata/<name>.golden (rewriting it
// under -update), mirroring internal/experiments' pattern.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diagnostics drifted from golden.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// loadFixture type-checks one testdata/src package under an import path
// whose suffix matches the real package it impersonates.
func loadFixture(t *testing.T, l *Loader, rel string) *Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatal(err)
	}
	importPath := l.ModulePath + "/internal/analysis/testdata/src/" + filepath.ToSlash(rel)
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return pkg
}

// render prints diagnostics one per line with module-root-relative
// paths, so the goldens are machine-independent.
func render(t *testing.T, root string, ds []Diagnostic) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, d := range ds {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			t.Fatal(err)
		}
		d.File = filepath.ToSlash(rel)
		buf.WriteString(d.String())
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func TestGoldenDiagnostics(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fixture := range []string{"internal/cache", "internal/engine", "internal/molecular", "internal/obs", "internal/server", "internal/shard"} {
		name := strings.TrimPrefix(fixture, "internal/")
		t.Run(name, func(t *testing.T) {
			l, err := NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			pkg := loadFixture(t, l, fixture)
			ds := Run(DefaultConfig(), pkg, nil)
			if len(ds) == 0 {
				t.Fatal("fixture produced no diagnostics; the seeding is broken")
			}
			checkGolden(t, name, render(t, root, ds))
		})
	}
}

// TestFixtureSuppression pins the directive semantics the fixtures rely
// on: the reasoned ignore in Sanctioned suppresses its clock read, while
// the malformed directives in Misdirected are themselves diagnosed.
func TestFixtureSuppression(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg := loadFixture(t, l, "internal/cache")
	var directives, determinism int
	for _, d := range Run(DefaultConfig(), pkg, nil) {
		switch d.Rule {
		case "directive":
			directives++
		case "determinism":
			determinism++
		}
	}
	if directives != 2 {
		t.Errorf("directive diagnostics = %d, want 2 (unknown rule + missing reason)", directives)
	}
	// Stamp, Getenv and Intn are findings; Sanctioned's time.Now is not.
	if determinism != 3 {
		t.Errorf("determinism diagnostics = %d, want 3 (Sanctioned must be suppressed)", determinism)
	}
}
