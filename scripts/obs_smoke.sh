#!/bin/sh
# Smoke test for the live observability plane: start molsim with -serve
# on an ephemeral port, poll until the server answers, then assert that
# /metrics, /regions, /decisions and / all return non-empty, well-formed
# output. Exits nonzero (and prints the simulator log) on any failure.
set -eu

PORT="${OBS_SMOKE_PORT:-19464}"
ADDR="127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
LOG="${DIR}/molsim.log"

cleanup() {
	kill "${SIM_PID}" 2>/dev/null || true
	wait "${SIM_PID}" 2>/dev/null || true
	rm -rf "${DIR}"
}

fail() {
	echo "obs-smoke: FAIL: $1" >&2
	echo "--- molsim log ---" >&2
	cat "${LOG}" >&2 || true
	exit 1
}

# fetch URL OUT: curl with a fallback to wget for minimal images.
fetch() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -o "$2" "$1"
	else
		wget -q -O "$2" "$1"
	fi
}

echo "obs-smoke: starting molsim -serve ${ADDR}"
go run ./cmd/molsim \
	-cache molecular:2MB:1x4:Randy -mix crafty,CRC,DRR -refs 1500000 \
	-serve "${ADDR}" -publish-every 8192 -serve-linger 60s \
	>"${LOG}" 2>&1 &
SIM_PID=$!
trap cleanup EXIT INT TERM

# Poll until the server is up (go run compiles first, so be patient).
BASE="http://${ADDR}"
i=0
until fetch "${BASE}/" "${DIR}/index.txt" 2>/dev/null; do
	i=$((i + 1))
	if [ "${i}" -ge 120 ]; then
		fail "server did not come up on ${ADDR} within 120s"
	fi
	if ! kill -0 "${SIM_PID}" 2>/dev/null; then
		fail "molsim exited before serving"
	fi
	sleep 1
done

grep -q "/decisions" "${DIR}/index.txt" || fail "index page missing endpoint listing"

# Give the simulation a moment to publish a real snapshot, then assert
# each endpoint. /regions must eventually show per-ASID topology.
i=0
while :; do
	fetch "${BASE}/regions" "${DIR}/regions.json" || fail "GET /regions"
	if grep -q '"asid"' "${DIR}/regions.json"; then
		break
	fi
	i=$((i + 1))
	if [ "${i}" -ge 60 ]; then
		fail "/regions never published region topology: $(cat "${DIR}/regions.json")"
	fi
	sleep 1
done
grep -q '"molecules"' "${DIR}/regions.json" || fail "/regions missing molecule counts"
grep -q '"miss_rate"' "${DIR}/regions.json" || fail "/regions missing miss rates"

fetch "${BASE}/metrics" "${DIR}/metrics.prom" || fail "GET /metrics"
grep -q '^# TYPE molcache_molecular_hits_total counter' "${DIR}/metrics.prom" \
	|| fail "/metrics missing molecular hit counter"
grep -q '^molcache_access_service_cycles_bucket' "${DIR}/metrics.prom" \
	|| fail "/metrics missing service-time histogram"

fetch "${BASE}/decisions" "${DIR}/decisions.json" || fail "GET /decisions"
grep -q '"decisions"' "${DIR}/decisions.json" || fail "/decisions not well-formed"
grep -q '"reason"' "${DIR}/decisions.json" || fail "/decisions has no reasoned entries"

fetch "${BASE}/debug/pprof/cmdline" "${DIR}/pprof.txt" || fail "GET /debug/pprof/cmdline"

fetch "${BASE}/healthz" "${DIR}/healthz.json" || fail "GET /healthz"
grep -q '"status": "ok"' "${DIR}/healthz.json" || fail "/healthz not ok: $(cat "${DIR}/healthz.json")"
grep -q '"last_publish"' "${DIR}/healthz.json" || fail "/healthz missing last publish time"
grep -q '"snapshot_age_seconds"' "${DIR}/healthz.json" || fail "/healthz missing snapshot age"
grep -q '"events_dropped"' "${DIR}/healthz.json" || fail "/healthz missing event-tap drop count"

echo "obs-smoke: OK (/ /metrics /regions /decisions /healthz /debug/pprof all served)"
