#!/bin/sh
# Smoke test for the live observability plane: start molsim with -serve
# on an ephemeral port, poll until the server answers, then assert that
# /metrics, /regions, /decisions and / all return non-empty, well-formed
# output. Then repeat for the serving layer: boot molcached with the
# two-tenant demo, assert /healthz answers 200 with a fresh snapshot and
# /tenants lists both demo tenants, and verify SIGTERM leaves a
# checkpoint behind. Exits nonzero (and prints the daemon log) on any
# failure.
set -eu

PORT="${OBS_SMOKE_PORT:-19464}"
ADDR="127.0.0.1:${PORT}"
CACHED_PORT="${MOLCACHED_SMOKE_PORT:-19465}"
CACHED_OBS_PORT="${MOLCACHED_SMOKE_OBS_PORT:-19466}"
DIR="$(mktemp -d)"
LOG="${DIR}/molsim.log"
CACHED_LOG="${DIR}/molcached.log"
SIM_PID=""
CACHED_PID=""

cleanup() {
	[ -n "${SIM_PID}" ] && kill "${SIM_PID}" 2>/dev/null || true
	[ -n "${CACHED_PID}" ] && kill "${CACHED_PID}" 2>/dev/null || true
	[ -n "${SIM_PID}" ] && wait "${SIM_PID}" 2>/dev/null || true
	[ -n "${CACHED_PID}" ] && wait "${CACHED_PID}" 2>/dev/null || true
	rm -rf "${DIR}"
}

fail() {
	echo "obs-smoke: FAIL: $1" >&2
	echo "--- molsim log ---" >&2
	cat "${LOG}" >&2 || true
	exit 1
}

# fetch URL OUT: curl with a fallback to wget for minimal images.
fetch() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -o "$2" "$1"
	else
		wget -q -O "$2" "$1"
	fi
}

echo "obs-smoke: starting molsim -serve ${ADDR}"
go run ./cmd/molsim \
	-cache molecular:2MB:1x4:Randy -mix crafty,CRC,DRR -refs 1500000 \
	-serve "${ADDR}" -publish-every 8192 -serve-linger 60s \
	>"${LOG}" 2>&1 &
SIM_PID=$!
trap cleanup EXIT INT TERM

# Poll until the server is up (go run compiles first, so be patient).
BASE="http://${ADDR}"
i=0
until fetch "${BASE}/" "${DIR}/index.txt" 2>/dev/null; do
	i=$((i + 1))
	if [ "${i}" -ge 120 ]; then
		fail "server did not come up on ${ADDR} within 120s"
	fi
	if ! kill -0 "${SIM_PID}" 2>/dev/null; then
		fail "molsim exited before serving"
	fi
	sleep 1
done

grep -q "/decisions" "${DIR}/index.txt" || fail "index page missing endpoint listing"

# Give the simulation a moment to publish a real snapshot, then assert
# each endpoint. /regions must eventually show per-ASID topology.
i=0
while :; do
	fetch "${BASE}/regions" "${DIR}/regions.json" || fail "GET /regions"
	if grep -q '"asid"' "${DIR}/regions.json"; then
		break
	fi
	i=$((i + 1))
	if [ "${i}" -ge 60 ]; then
		fail "/regions never published region topology: $(cat "${DIR}/regions.json")"
	fi
	sleep 1
done
grep -q '"molecules"' "${DIR}/regions.json" || fail "/regions missing molecule counts"
grep -q '"miss_rate"' "${DIR}/regions.json" || fail "/regions missing miss rates"

fetch "${BASE}/metrics" "${DIR}/metrics.prom" || fail "GET /metrics"
grep -q '^# TYPE molcache_molecular_hits_total counter' "${DIR}/metrics.prom" \
	|| fail "/metrics missing molecular hit counter"
grep -q '^molcache_access_service_cycles_bucket' "${DIR}/metrics.prom" \
	|| fail "/metrics missing service-time histogram"

fetch "${BASE}/decisions" "${DIR}/decisions.json" || fail "GET /decisions"
grep -q '"decisions"' "${DIR}/decisions.json" || fail "/decisions not well-formed"
grep -q '"reason"' "${DIR}/decisions.json" || fail "/decisions has no reasoned entries"

fetch "${BASE}/debug/pprof/cmdline" "${DIR}/pprof.txt" || fail "GET /debug/pprof/cmdline"

fetch "${BASE}/healthz" "${DIR}/healthz.json" || fail "GET /healthz"
grep -q '"status": "ok"' "${DIR}/healthz.json" || fail "/healthz not ok: $(cat "${DIR}/healthz.json")"
grep -q '"last_publish"' "${DIR}/healthz.json" || fail "/healthz missing last publish time"
grep -q '"snapshot_age_seconds"' "${DIR}/healthz.json" || fail "/healthz missing snapshot age"
grep -q '"events_dropped"' "${DIR}/healthz.json" || fail "/healthz missing event-tap drop count"

echo "obs-smoke: OK (/ /metrics /regions /decisions /healthz /debug/pprof all served)"

kill "${SIM_PID}" 2>/dev/null || true
wait "${SIM_PID}" 2>/dev/null || true
SIM_PID=""

# --- Serving layer: molcached ---------------------------------------
# Boot the daemon with the deterministic two-tenant demo, a journal and
# a checkpoint path. Build a real binary so SIGTERM reaches the daemon
# directly (no `go run` wrapper in between).
cfail() {
	echo "obs-smoke: FAIL: $1" >&2
	echo "--- molcached log ---" >&2
	cat "${CACHED_LOG}" >&2 || true
	exit 1
}

CACHED_ADDR="127.0.0.1:${CACHED_PORT}"
CACHED_OBS="127.0.0.1:${CACHED_OBS_PORT}"
CKPT="${DIR}/molcached.ckpt"
echo "obs-smoke: building molcached"
go build -o "${DIR}/molcached" ./cmd/molcached || cfail "molcached does not build"
echo "obs-smoke: starting molcached -serve ${CACHED_OBS}"
"${DIR}/molcached" \
	-listen "${CACHED_ADDR}" -serve "${CACHED_OBS}" \
	-cache molecular:1MB:4x2:Randy -demo -demo-ops 3000 -publish-every 500 \
	-journal "${DIR}/access.molc" -checkpoint "${CKPT}" \
	>"${CACHED_LOG}" 2>&1 &
CACHED_PID=$!

CBASE="http://${CACHED_OBS}"
i=0
until fetch "${CBASE}/healthz" "${DIR}/chealthz.json" 2>/dev/null; do
	i=$((i + 1))
	if [ "${i}" -ge 120 ]; then
		cfail "molcached did not come up on ${CACHED_OBS} within 120s"
	fi
	if ! kill -0 "${CACHED_PID}" 2>/dev/null; then
		cfail "molcached exited before serving"
	fi
	sleep 1
done

# /healthz must be ok with a fresh (non-stale) published snapshot. The
# demo runs before the daemon waits on signals, so once /tenants shows
# both tenants the final demo publish has happened; a snapshot older
# than 60s at that point means the publish cadence is broken.
i=0
while :; do
	fetch "${CBASE}/tenants" "${DIR}/tenants.json" || cfail "GET /tenants"
	if grep -q '"hot"' "${DIR}/tenants.json" && grep -q '"scan"' "${DIR}/tenants.json"; then
		break
	fi
	i=$((i + 1))
	if [ "${i}" -ge 60 ]; then
		cfail "/tenants never listed the demo tenants: $(cat "${DIR}/tenants.json")"
	fi
	sleep 1
done
grep -q '"goal": 0.05' "${DIR}/tenants.json" || cfail "/tenants missing the tight demo goal"
grep -q '"miss_rate"' "${DIR}/tenants.json" || cfail "/tenants missing miss rates"
grep -q '"slo_met"' "${DIR}/tenants.json" || cfail "/tenants missing SLO verdicts"

fetch "${CBASE}/healthz" "${DIR}/chealthz.json" || cfail "GET /healthz"
grep -q '"status": "ok"' "${DIR}/chealthz.json" || cfail "/healthz not ok: $(cat "${DIR}/chealthz.json")"
AGE="$(sed -n 's/.*"snapshot_age_seconds": \([0-9]*\)\(\.[0-9]*\)\?.*/\1/p' "${DIR}/chealthz.json")"
[ -n "${AGE}" ] || cfail "/healthz missing snapshot age: $(cat "${DIR}/chealthz.json")"
[ "${AGE}" -lt 60 ] || cfail "/healthz snapshot is stale (${AGE}s old)"

fetch "${CBASE}/metrics" "${DIR}/cmetrics.prom" || cfail "GET /metrics"
grep -q '^molcache_server_accesses_total' "${DIR}/cmetrics.prom" \
	|| cfail "/metrics missing server access counter"
grep -q 'molcache_server_requests_total{verb=' "${DIR}/cmetrics.prom" \
	|| cfail "/metrics missing per-verb request counters"

# SIGTERM must checkpoint and exit cleanly.
kill -TERM "${CACHED_PID}"
i=0
while kill -0 "${CACHED_PID}" 2>/dev/null; do
	i=$((i + 1))
	if [ "${i}" -ge 30 ]; then
		cfail "molcached did not exit within 30s of SIGTERM"
	fi
	sleep 1
done
wait "${CACHED_PID}" 2>/dev/null || cfail "molcached exited nonzero"
CACHED_PID=""
[ -s "${CKPT}" ] || cfail "SIGTERM left no checkpoint at ${CKPT}"
grep -q "checkpoint written" "${CACHED_LOG}" || cfail "shutdown log missing checkpoint line"

echo "obs-smoke: OK (molcached /healthz /tenants /metrics served, SIGTERM checkpointed)"
