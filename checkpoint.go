package molcache

import (
	"encoding/json"
	"fmt"
	"os"

	"molcache/internal/faults"
	"molcache/internal/molecular"
	"molcache/internal/noc"
	"molcache/internal/resize"
	"molcache/internal/snapshot"
	"molcache/internal/telemetry"
)

// This file is the crash-safe checkpoint/restore facade: Checkpoint
// packs the full simulation state — cache geometry and contents, resize
// controller state (including the decision ring), fault-injection
// cursors, NoC traffic counters and the live telemetry registry — into
// a MOLC1 container (internal/snapshot), and Restore rebuilds a
// byte-identical continuation from one. A run checkpointed at access N
// and restored produces exactly the Results, ledgers, histograms and
// telemetry an uninterrupted run produces.
//
// Restores are corruption-tolerant: envelope damage (truncation, bit
// flips, version skew) and semantic damage (states a healthy simulator
// cannot reach) surface as typed errors naming the failing section, and
// RestoreOrColdStart degrades to a fresh simulator while counting the
// failure on the molcache_snapshot_restore_failures metric. Every
// successful restore passes the full invariant suite before the engine
// resumes.

// Checkpoint section names.
const (
	sectionMeta      = "meta"
	sectionConfig    = "config"
	sectionCache     = "cache"
	sectionResize    = "resize"
	sectionTelemetry = "telemetry"
	sectionNoC       = "noc"
	sectionFaults    = "faults"
)

// SnapshotError is the typed error a failed restore reports: Section
// names the MOLC1 section that was corrupt or inconsistent.
type SnapshotError = snapshot.Error

// checkpointMeta is quick-inspection context (molchaos repro bundles
// and healthz read it without decoding the heavyweight sections).
type checkpointMeta struct {
	Addresses uint64 `json:"addresses"`
}

// meshGeom records an attached interconnect's construction parameters.
type meshGeom struct {
	W          int     `json:"w"`
	H          int     `json:"h"`
	HopLatency uint64  `json:"hop_latency"`
	HopEnergy  float64 `json:"hop_energy"`
}

// checkpointConfig carries the configurations needed to rebuild the
// simulator skeleton before state is poured back in.
type checkpointConfig struct {
	Molecular molecular.Config `json:"molecular"`
	Resize    resize.Config    `json:"resize"`
	Mesh      *meshGeom        `json:"mesh,omitempty"`
}

// checkpointFaults carries an attached injector's campaign and delivery
// cursors.
type checkpointFaults struct {
	Campaign faults.Campaign    `json:"campaign"`
	Cursors  faults.CursorState `json:"cursors"`
}

// sectionErr wraps a semantic decode/restore failure as a typed
// *SnapshotError naming the section, matching the envelope decoder's
// error shape so callers have one error type to inspect.
func sectionErr(section string, err error) error {
	return &snapshot.Error{Section: section, Reason: err.Error()}
}

// EncodeCheckpoint serializes the simulator's complete state as a MOLC1
// container. Telemetry, interconnect and fault sections appear only
// when the corresponding attachment exists.
func (s *Simulator) EncodeCheckpoint() ([]byte, error) {
	cache := s.Cache
	cfg := checkpointConfig{
		Molecular: cache.Config(),
		Resize:    s.Controller.Config(),
	}
	if m := cache.Interconnect(); m != nil {
		cfg.Mesh = &meshGeom{
			W: m.Width(), H: m.Height(),
			HopLatency: m.HopLatency(), HopEnergy: m.HopEnergy(),
		}
	}
	sections := make([]snapshot.Section, 0, 7)
	add := func(name string, v any) error {
		payload, err := json.Marshal(v)
		if err != nil {
			return sectionErr(name, err)
		}
		sections = append(sections, snapshot.Section{Name: name, Payload: payload})
		return nil
	}
	if err := add(sectionMeta, checkpointMeta{Addresses: cache.Addresses()}); err != nil {
		return nil, err
	}
	if err := add(sectionConfig, cfg); err != nil {
		return nil, err
	}
	if err := add(sectionCache, cache.CaptureState()); err != nil {
		return nil, err
	}
	if err := add(sectionResize, s.Controller.CaptureState()); err != nil {
		return nil, err
	}
	if m := cache.Interconnect(); m != nil {
		if err := add(sectionNoC, m.Stats()); err != nil {
			return nil, err
		}
	}
	if inj := cache.Faults(); inj != nil {
		if err := add(sectionFaults, checkpointFaults{
			Campaign: inj.Campaign(), Cursors: inj.CursorState(),
		}); err != nil {
			return nil, err
		}
	}
	if reg := cache.Registry(); reg != nil {
		if err := add(sectionTelemetry, reg.AtomicSnapshot()); err != nil {
			return nil, err
		}
	}
	return snapshot.Encode(sections)
}

// Checkpoint writes the simulator's state to path crash-safely (temp
// file + fsync + atomic rename): a crash mid-write leaves the previous
// checkpoint intact, never a torn file.
func (s *Simulator) Checkpoint(path string) error {
	data, err := s.EncodeCheckpoint()
	if err != nil {
		return err
	}
	return snapshot.WriteRaw(path, data)
}

// RestoreSimulatorBytes rebuilds a simulator from an encoded checkpoint.
// tr and reg are the caller's telemetry attachments (either may be nil);
// when reg is non-nil the snapshot's instrument values are loaded into
// it after attachment, so the registry continues exactly where the
// checkpointed one left off. The restored simulator passes the full
// invariant suite (structural rules + index consistency) before being
// returned; any corruption yields a typed error naming the section.
func RestoreSimulatorBytes(data []byte, tr *Tracer, reg *Registry) (*Simulator, error) {
	sections, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	unpack := func(name string, v any) error {
		payload, err := snapshot.Find(sections, name)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(payload, v); err != nil {
			return sectionErr(name, err)
		}
		return nil
	}
	var cfg checkpointConfig
	if err := unpack(sectionConfig, &cfg); err != nil {
		return nil, err
	}
	var cacheState molecular.CacheState
	if err := unpack(sectionCache, &cacheState); err != nil {
		return nil, err
	}
	var ctrlState resize.ControllerState
	if err := unpack(sectionResize, &ctrlState); err != nil {
		return nil, err
	}

	cache, err := molecular.RestoreCache(cfg.Molecular, cacheState)
	if err != nil {
		return nil, sectionErr(sectionCache, err)
	}
	ctrl, err := resize.New(cache, cfg.Resize)
	if err != nil {
		return nil, sectionErr(sectionConfig, err)
	}
	if err := ctrl.RestoreState(ctrlState); err != nil {
		return nil, sectionErr(sectionResize, err)
	}
	sim := &Simulator{Cache: cache, Controller: ctrl}

	if cfg.Mesh != nil {
		mesh, err := noc.New(cfg.Mesh.W, cfg.Mesh.H, cfg.Mesh.HopLatency, cfg.Mesh.HopEnergy)
		if err != nil {
			return nil, sectionErr(sectionConfig, err)
		}
		if err := cache.AttachInterconnect(mesh); err != nil {
			return nil, sectionErr(sectionConfig, err)
		}
		var st noc.Stats
		if err := unpack(sectionNoC, &st); err != nil {
			return nil, err
		}
		if err := mesh.RestoreStats(st); err != nil {
			return nil, sectionErr(sectionNoC, err)
		}
	}

	if _, err := snapshot.Find(sections, sectionFaults); err == nil {
		var fs checkpointFaults
		if err := unpack(sectionFaults, &fs); err != nil {
			return nil, err
		}
		inj, err := faults.NewInjector(fs.Campaign)
		if err != nil {
			return nil, sectionErr(sectionFaults, err)
		}
		if err := cache.AttachFaults(inj); err != nil {
			return nil, sectionErr(sectionFaults, err)
		}
		if err := inj.RestoreCursors(fs.Cursors); err != nil {
			return nil, sectionErr(sectionFaults, err)
		}
	}

	// Telemetry: re-attach first so gauge funcs and per-region
	// instruments exist, then pour the snapshot's values back in.
	sim.AttachTelemetry(tr, reg)
	if reg != nil {
		if payload, err := snapshot.Find(sections, sectionTelemetry); err == nil {
			var ms telemetry.Snapshot
			if err := json.Unmarshal(payload, &ms); err != nil {
				return nil, sectionErr(sectionTelemetry, err)
			}
			if err := reg.LoadSnapshot(ms); err != nil {
				return nil, sectionErr(sectionTelemetry, err)
			}
		}
	}

	// The restore gate: the full invariant rule set must hold before
	// the engine serves a single access.
	if vs := sim.CheckInvariants(); len(vs) > 0 {
		return nil, sectionErr(sectionCache,
			fmt.Errorf("restored state violates invariant %s: %s", vs[0].Rule, vs[0].Detail))
	}
	return sim, nil
}

// RestoreSimulator reads a MOLC1 checkpoint file and rebuilds the
// simulator from it (see RestoreSimulatorBytes).
func RestoreSimulator(path string, tr *Tracer, reg *Registry) (*Simulator, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("molcache: read checkpoint %s: %w", path, err)
	}
	return RestoreSimulatorBytes(data, tr, reg)
}

// RestoreOrColdStart attempts a restore from path; on any failure —
// unreadable file, corrupted envelope, inconsistent state — it reports
// the failure on reg's molcache_snapshot_restore_failures counter and
// falls back to a cold-started simulator built from the given configs.
// The returned restoreErr is nil on a successful restore and carries
// the (already absorbed) failure otherwise; err is non-nil only when
// even the cold start fails.
func RestoreOrColdStart(path string, mcfg MolecularConfig, rcfg ResizeConfig,
	tr *Tracer, reg *Registry) (sim *Simulator, restoreErr, err error) {
	sim, restoreErr = RestoreSimulator(path, tr, reg)
	if restoreErr == nil {
		return sim, nil, nil
	}
	if reg != nil {
		reg.Counter("molcache_snapshot_restore_failures").Inc()
	}
	sim, err = NewSimulator(mcfg, rcfg)
	if err != nil {
		return nil, restoreErr, err
	}
	sim.AttachTelemetry(tr, reg)
	return sim, restoreErr, nil
}
