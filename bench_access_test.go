// Access-path benchmarks: the fast-path block index against the linear
// probe oracle, over region size × line factor × replacement policy,
// on a pure hit stream (the steady state the O(1) index exists for).
// TestWriteAccessBench re-runs the grid through testing.Benchmark and
// writes the results as a telemetry snapshot (BENCH_access.json via
// `make bench`), giving future PRs a machine-readable perf trajectory.
package molcache_test

import (
	"fmt"
	"os"
	"testing"

	"molcache/internal/addr"
	"molcache/internal/molecular"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// benchPolicies is the access-bench grid's policy axis.
var benchPolicies = []molecular.ReplacementKind{
	molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
}

// hotCache builds a single-region cache of exactly `mols` molecules and
// warms a working set that the policy keeps resident forever: one line
// per direct-mapped slot for the randomized policies (distinct slots, so
// no fill ever evicts a set member) and the full region capacity for
// LRU-Direct (whose deterministic invalid-first fill converges in one
// pass). After warmup the stream hits forever.
func hotCache(tb testing.TB, policy molecular.ReplacementKind, mols, lineFactor int, reference bool) (*molecular.Cache, []trace.Ref) {
	tb.Helper()
	c, err := molecular.New(molecular.Config{
		TotalSize:       1 * addr.MB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 4,
		Policy:          policy,
		Seed:            2006,
	})
	if err != nil {
		tb.Fatal(err)
	}
	c.UseReferenceProbe(reference)
	if _, err := c.CreateRegion(1, molecular.RegionOptions{
		HomeCluster: 0, HomeTile: 0,
		InitialMolecules: mols,
		LineFactor:       lineFactor,
	}); err != nil {
		tb.Fatal(err)
	}
	linesPerMol := int(c.Config().MoleculeSize / c.Config().LineSize)
	ws := linesPerMol
	if policy == molecular.LRUDirect {
		// LRU-Direct's invalid-first victim would park a one-line-per-slot
		// set entirely in the first molecule of each hashed row, leaving
		// the reference scan trivially short. Its fill is deterministic,
		// though, so a full-capacity set converges in one pass and spreads
		// the hit stream across every molecule of the region — the steady
		// state the index exists for.
		ws = mols * linesPerMol
	}
	refs := make([]trace.Ref, ws)
	for b := 0; b < ws; b++ {
		refs[b] = trace.Ref{Addr: uint64(b) * c.Config().LineSize, ASID: 1, Kind: trace.Read}
	}
	for pass := 0; pass < 2; pass++ {
		for _, r := range refs {
			c.Access(r)
		}
	}
	return c, refs
}

// benchAccessHot drives the warmed hit stream through one configuration.
func benchAccessHot(b *testing.B, policy molecular.ReplacementKind, mols, lineFactor int, reference bool) {
	c, refs := hotCache(b, policy, mols, lineFactor, reference)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(refs[i%len(refs)])
	}
}

// BenchmarkAccessHot is the grid: policy × region size × line factor,
// each on the block index and on the reference scan. Compare fast
// vs. reference ns/op for the lookup speedup; allocs/op must be 0 on
// both (the access path allocates nothing in steady state).
func BenchmarkAccessHot(b *testing.B) {
	for _, policy := range benchPolicies {
		for _, mols := range []int{16, 64} {
			for _, lf := range []int{1, 4} {
				for _, path := range []string{"fast", "reference"} {
					policy, mols, lf, ref := policy, mols, lf, path == "reference"
					b.Run(fmt.Sprintf("%s/mol%d/lf%d/%s", policy, mols, lf, path), func(b *testing.B) {
						benchAccessHot(b, policy, mols, lf, ref)
					})
				}
			}
		}
	}
}

// TestAccessHotPathZeroAllocs pins the allocation-elimination claim
// deterministically (benchmarks only report; this fails the build):
// a steady-state hit allocates nothing, on either path.
func TestAccessHotPathZeroAllocs(t *testing.T) {
	for _, reference := range []bool{false, true} {
		c, refs := hotCache(t, molecular.RandyReplacement, 64, 1, reference)
		hitsBefore := c.Ledger().Total.Hits
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			c.Access(refs[i%len(refs)])
			i++
		})
		if allocs != 0 {
			t.Errorf("reference=%v: %v allocs per hit, want 0", reference, allocs)
		}
		if c.Ledger().Total.Hits == hitsBefore {
			t.Errorf("reference=%v: warmed stream did not hit; the property is vacuous", reference)
		}
	}
}

// TestWriteAccessBench runs the access grid through testing.Benchmark
// and writes ns/op, allocs/op and the fast-over-reference speedup as a
// telemetry snapshot to $BENCH_OUT. Skipped unless BENCH_OUT is set:
// `make bench` (and the CI bench job) set it to BENCH_access.json.
func TestWriteAccessBench(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set; set it to write the access benchmark snapshot")
	}
	reg := telemetry.NewRegistry()
	for _, policy := range benchPolicies {
		for _, mols := range []int{16, 64} {
			for _, lf := range []int{1, 4} {
				policy, mols, lf := policy, mols, lf
				run := func(reference bool) testing.BenchmarkResult {
					return testing.Benchmark(func(b *testing.B) {
						benchAccessHot(b, policy, mols, lf, reference)
					})
				}
				fast, ref := run(false), run(true)
				cfg := fmt.Sprintf("%s/mol%d/lf%d", policy, mols, lf)
				record := func(path string, r testing.BenchmarkResult) float64 {
					ns := float64(r.T.Nanoseconds()) / float64(r.N)
					label := fmt.Sprintf("{config=%q,path=%q}", cfg, path)
					reg.Gauge("molcache_index_bench_ns_per_op" + label).Set(ns)
					reg.Gauge("molcache_index_bench_allocs_per_op" + label).Set(float64(r.AllocsPerOp()))
					return ns
				}
				fastNs := record("fast", fast)
				refNs := record("reference", ref)
				speedup := refNs / fastNs
				reg.Gauge("molcache_index_bench_speedup" + fmt.Sprintf("{config=%q}", cfg)).Set(speedup)
				t.Logf("%s: fast %.1f ns/op, reference %.1f ns/op, speedup %.2fx", cfg, fastNs, refNs, speedup)
			}
		}
	}
	data, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
