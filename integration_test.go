// End-to-end integration tests: the full pipeline the paper's
// methodology describes — workload models into the CMP substrate,
// L1-miss trace capture, trace serialization round trips, replay into
// the molecular cache under the resize controller, and QoS metrics —
// exercised through the public facade plus the trace formats.
package molcache_test

import (
	"bytes"
	"testing"

	"molcache"
	"molcache/internal/trace"
)

// TestPipelineEndToEnd runs the miniature version of the full experiment
// pipeline and checks cross-module consistency at every hand-off.
func TestPipelineEndToEnd(t *testing.T) {
	// Stage 1: run two applications on the CMP over a small shared L2,
	// capturing the L1-miss stream.
	l2, err := molcache.NewTraditional(molcache.TraditionalConfig{
		Size: 256 << 10, Ways: 4, LineSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := molcache.NewSystem(l2, molcache.SystemConfig{CaptureL1Misses: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"ammp", "parser"} {
		asid := uint16(i + 1)
		gen, err := molcache.NewWorkload(name, uint64(asid)<<36, 99+uint64(asid))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AddCore(asid, gen); err != nil {
			t.Fatal(err)
		}
	}
	sys.Run(800_000)
	captured := sys.Captured()
	if len(captured) == 0 {
		t.Fatal("no L1 misses captured")
	}

	// Stage 2: the trace must survive both serializations bit for bit.
	var fixed, compact bytes.Buffer
	fw := trace.NewWriter(&fixed)
	cw := trace.NewCompressedWriter(&compact)
	for _, r := range captured {
		if err := fw.Write(r); err != nil {
			t.Fatal(err)
		}
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := trace.NewReader(&fixed)
	if err != nil {
		t.Fatal(err)
	}
	fromFixed, err := fr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	cr, err := trace.NewCompressedReader(&compact)
	if err != nil {
		t.Fatal(err)
	}
	fromCompact, err := cr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fromFixed) != len(captured) || len(fromCompact) != len(captured) {
		t.Fatalf("lengths diverged: %d fixed, %d compact, %d live",
			len(fromFixed), len(fromCompact), len(captured))
	}
	for i := range captured {
		if fromFixed[i] != captured[i] || fromCompact[i] != captured[i] {
			t.Fatalf("record %d diverged across formats", i)
		}
	}

	// Stage 3: replay into a molecular cache under the resize
	// controller. The replay through the simulator facade must agree
	// with a manual replay into an identically configured cache.
	mcfg := molcache.MolecularConfig{TotalSize: 1 << 20, Policy: molcache.Randy, Seed: 5}
	rcfg := molcache.ResizeConfig{DefaultGoal: 0.15}
	sim, err := molcache.NewSimulator(mcfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	ledger := sim.Run(fromCompact)

	manual, err := molcache.NewSimulator(mcfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range captured {
		manual.Access(r)
	}
	for _, asid := range []uint16{1, 2} {
		if ledger.App(asid) != manual.Cache.Ledger().App(asid) {
			t.Errorf("asid %d: replay paths disagree: %+v vs %+v",
				asid, ledger.App(asid), manual.Cache.Ledger().App(asid))
		}
	}

	// Stage 4: structural invariants and metrics consistency.
	if err := sim.Cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	goals := molcache.UniformGoals(0.15, 1, 2)
	dev := molcache.AverageDeviation(ledger, goals)
	if dev < 0 || dev > 1 {
		t.Errorf("deviation out of range: %v", dev)
	}
	// ammp (small hot set) must be meeting the goal by the end of the
	// replay; its partition must be non-degenerate.
	if mr := ledger.App(1).MissRate(); mr > 0.5 {
		t.Errorf("ammp replay miss rate %v, want it to settle", mr)
	}
	if sim.Cache.Region(1).MoleculeCount() < 1 {
		t.Error("ammp partition vanished")
	}
}

// TestDeterminismAcrossWholePipeline re-runs the pipeline and demands
// bit-identical outcomes — the property every experiment in
// EXPERIMENTS.md relies on.
func TestDeterminismAcrossWholePipeline(t *testing.T) {
	run := func() (uint64, uint64, int) {
		l2, err := molcache.NewTraditional(molcache.TraditionalConfig{
			Size: 256 << 10, Ways: 4, LineSize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := molcache.NewSystem(l2, molcache.SystemConfig{CaptureL1Misses: true})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := molcache.NewWorkload("twolf", 1<<36, 1234)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AddCore(1, gen); err != nil {
			t.Fatal(err)
		}
		sys.Run(400_000)
		sim, err := molcache.NewSimulator(
			molcache.MolecularConfig{TotalSize: 512 << 10, Seed: 42},
			molcache.ResizeConfig{DefaultGoal: 0.2},
		)
		if err != nil {
			t.Fatal(err)
		}
		led := sim.Run(sys.Captured())
		return led.App(1).Hits, led.App(1).Misses, sim.Cache.Region(1).MoleculeCount()
	}
	h1, m1, n1 := run()
	h2, m2, n2 := run()
	if h1 != h2 || m1 != m2 || n1 != n2 {
		t.Errorf("pipeline not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			h1, m1, n1, h2, m2, n2)
	}
}
