// Observability-overhead benchmarks: the span-instrumented access path
// with tracing detached, attached-but-unsampled, sampled at the default
// 1-in-64 rate, and tracing every access. The detached and unsampled
// numbers are the tentpole's "free when off" claim — CI pins their
// allocs/op to zero — and TestWriteObsBench writes the grid as a
// telemetry snapshot (BENCH_obs.json via `make bench`) so future PRs
// inherit a machine-readable overhead trajectory.
package molcache_test

import (
	"fmt"
	"os"
	"testing"

	"molcache/internal/molecular"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// spanVariants is the tracing axis of the overhead grid. every == 0
// means no tracer attached at all; otherwise a 1-in-every sampler.
var spanVariants = []struct {
	name  string
	every uint64
}{
	{"off", 0},
	// 1<<30 keeps StartAccess returning false for the whole run: the
	// "attached but this access is unsampled" fast path.
	{"unsampled", 1 << 30},
	{"sampled64", 64},
	{"always", 1},
}

// spanCache is hotCache plus a span tracer variant attached after
// warmup (so warmup accesses don't consume buffer or samples).
func spanCache(tb testing.TB, every uint64) (*molecular.Cache, []trace.Ref, *telemetry.SpanTracer) {
	c, refs := hotCache(tb, molecular.RandyReplacement, 64, 1, false)
	var st *telemetry.SpanTracer
	if every > 0 {
		st = telemetry.NewSpanTracer(every, 0)
	}
	c.AttachSpans(st)
	return c, refs, st
}

// benchAccessSpans drives the warmed hit stream under one tracing
// variant.
func benchAccessSpans(b *testing.B, every uint64) {
	c, refs, _ := spanCache(b, every)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(refs[i%len(refs)])
	}
}

// BenchmarkAccessSpans measures span-tracing overhead on the hot access
// path. Compare "off" and "unsampled" against BenchmarkAccessHot's fast
// path: both must be allocation-free and within noise of uninstrumented.
func BenchmarkAccessSpans(b *testing.B) {
	for _, v := range spanVariants {
		v := v
		b.Run(v.name, func(b *testing.B) { benchAccessSpans(b, v.every) })
	}
}

// TestSpanHotPathZeroAllocs pins the "0 allocs when tracing is off"
// claim deterministically (the CI overhead guard runs this; benchmarks
// only report). Both shapes of "off" are covered: no tracer attached,
// and a tracer attached whose sampler rejects the access.
func TestSpanHotPathZeroAllocs(t *testing.T) {
	for _, v := range spanVariants[:2] { // off, unsampled
		c, refs, st := spanCache(t, v.every)
		hitsBefore := c.Ledger().Total.Hits
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			c.Access(refs[i%len(refs)])
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per hit, want 0", v.name, allocs)
		}
		if c.Ledger().Total.Hits == hitsBefore {
			t.Errorf("%s: warmed stream did not hit; the property is vacuous", v.name)
		}
		if st != nil && st.SampledAccesses() != 0 {
			t.Errorf("%s: sampler fired %d times; the unsampled path was not measured",
				v.name, st.SampledAccesses())
		}
	}
}

// TestSpanSampledPathRecords sanity-checks the other end of the grid:
// with every=1 the tracer records spans for each access and never
// disturbs results (hits keep hitting).
func TestSpanSampledPathRecords(t *testing.T) {
	c, refs, st := spanCache(t, 1)
	missesBefore := c.Ledger().Total.Misses
	for i := 0; i < 256; i++ {
		c.Access(refs[i%len(refs)])
	}
	if st.SampledAccesses() != 256 {
		t.Fatalf("sampled %d accesses, want 256", st.SampledAccesses())
	}
	if st.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	if got := c.Ledger().Total.Misses; got != missesBefore {
		t.Fatalf("tracing perturbed the stream: misses %d -> %d", missesBefore, got)
	}
}

// TestWriteObsBench runs the tracing grid through testing.Benchmark and
// writes ns/op, allocs/op and each variant's overhead over "off" as a
// telemetry snapshot to $BENCH_OBS_OUT. Skipped unless BENCH_OBS_OUT is
// set: `make bench` (and the CI bench job) set it to BENCH_obs.json.
func TestWriteObsBench(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("BENCH_OBS_OUT not set; set it to write the observability benchmark snapshot")
	}
	reg := telemetry.NewRegistry()
	var offNs float64
	for _, v := range spanVariants {
		v := v
		r := testing.Benchmark(func(b *testing.B) { benchAccessSpans(b, v.every) })
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		label := fmt.Sprintf("{variant=%q}", v.name)
		reg.Gauge("obs_span_bench_ns_per_op" + label).Set(ns)
		reg.Gauge("obs_span_bench_allocs_per_op" + label).Set(float64(r.AllocsPerOp()))
		if v.name == "off" {
			offNs = ns
		} else if offNs > 0 {
			reg.Gauge("obs_span_bench_overhead_ratio" + label).Set(ns / offNs)
		}
		t.Logf("%s: %.1f ns/op, %d allocs/op", v.name, ns, r.AllocsPerOp())
	}
	data, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
