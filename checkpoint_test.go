package molcache_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"molcache"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/snapshot"
)

// ckptConfig is the small simulator geometry the facade checkpoint tests
// run on (the heavyweight cross-policy sweep lives in the differential
// oracle; these tests exercise the file path and the error model).
func ckptConfig() (molcache.MolecularConfig, molcache.ResizeConfig) {
	mcfg := molcache.MolecularConfig{
		TotalSize:       512 << 10,
		MoleculeSize:    8 << 10,
		TilesPerCluster: 4,
		Clusters:        2,
		Policy:          molecular.RandyReplacement,
		LineFactor:      2,
		Seed:            77,
	}
	rcfg := molcache.ResizeConfig{
		Period:        400,
		MinPeriod:     200,
		MaxPeriod:     5_000,
		MaxAllocation: 4,
		DefaultGoal:   0.2,
	}
	return mcfg, rcfg
}

// ckptSim builds a telemetry-attached simulator and runs it through the
// first half of the reference trace, returning the remaining refs.
func ckptSim(t *testing.T, reg *molcache.Registry) (*molcache.Simulator, []molcache.Ref) {
	t.Helper()
	mcfg, rcfg := ckptConfig()
	sim, err := molcache.NewSimulator(mcfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.AttachTelemetry(nil, reg)
	refs := diffTrace(99)
	cut := len(refs) / 2
	for _, r := range refs[:cut] {
		sim.Access(r)
	}
	return sim, refs[cut:]
}

// TestCheckpointFileRoundTrip drives the file-level API: Checkpoint
// writes atomically (including over an existing checkpoint), leaves no
// temp litter, and RestoreSimulator continues byte-identically.
func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.molc")
	reg := molcache.NewRegistry()
	sim, rest := ckptSim(t, reg)

	if err := sim.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Overwriting an existing checkpoint must also be atomic.
	if err := sim.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint overwrite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}

	reg2 := molcache.NewRegistry()
	sim2, err := molcache.RestoreSimulator(path, nil, reg2)
	if err != nil {
		t.Fatalf("RestoreSimulator: %v", err)
	}
	for i, r := range rest {
		ra, rb := sim.Access(r), sim2.Access(r)
		if ra != rb {
			t.Fatalf("access %d after restore: %+v != %+v", i, ra, rb)
		}
	}
	if a, b := *sim.Cache.Ledger(), *sim2.Cache.Ledger(); a.Total != b.Total {
		t.Errorf("ledger totals diverged: %+v != %+v", a.Total, b.Total)
	}
}

// TestRestoreCorruptionTyped feeds damaged checkpoints to the restore
// path: every failure mode must surface as a typed *SnapshotError naming
// the failing section — never a panic, never an untyped error.
func TestRestoreCorruptionTyped(t *testing.T) {
	reg := molcache.NewRegistry()
	sim, _ := ckptSim(t, reg)
	data, err := sim.EncodeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// mutate re-encodes the container after damaging one section's
	// payload through a JSON round trip, so the envelope CRCs are valid
	// and only the semantic validation can catch it.
	mutate := func(t *testing.T, section string, fn func(payload []byte) []byte) []byte {
		t.Helper()
		sections, err := snapshot.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sections {
			if sections[i].Name == section {
				sections[i].Payload = fn(sections[i].Payload)
			}
		}
		out, err := snapshot.Encode(sections)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name    string
		damaged []byte
		section string // "" means any section is acceptable
	}{
		{"empty", nil, "header"},
		{"truncated", data[:len(data)/3], ""},
		{"bad-magic", append([]byte("NOTIT"), data[5:]...), "header"},
		{"version-skew", func() []byte {
			d := append([]byte(nil), data...)
			d[5] = 99
			return d
		}(), "header"},
		{"payload-bit-flip", func() []byte {
			d := append([]byte(nil), data...)
			d[len(d)-10] ^= 0x40
			return d
		}(), ""},
		{"cache-semantic", mutate(t, "cache", func(p []byte) []byte {
			var st molecular.CacheState
			if err := json.Unmarshal(p, &st); err != nil {
				t.Fatal(err)
			}
			if len(st.Molecules) == 0 {
				t.Fatal("no molecules in checkpoint")
			}
			st.Molecules[0].ID = 1 << 20 // out of order and out of range
			out, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}), "cache"},
		{"resize-semantic", mutate(t, "resize", func(p []byte) []byte {
			var st resize.ControllerState
			if err := json.Unmarshal(p, &st); err != nil {
				t.Fatal(err)
			}
			st.Decisions = append(st.Decisions, resize.Decision{})
			st.DecisionSeq = 0 // retained entries now exceed lifetime count
			out, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}), "resize"},
		{"cache-not-json", mutate(t, "cache", func([]byte) []byte {
			return []byte("not json")
		}), "cache"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := molcache.RestoreSimulatorBytes(tc.damaged, nil, molcache.NewRegistry())
			if err == nil {
				t.Fatal("damaged checkpoint restored without error")
			}
			var se *molcache.SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("error is not a *SnapshotError: %v", err)
			}
			if tc.section != "" && se.Section != tc.section {
				t.Fatalf("error names section %q, want %q (%v)", se.Section, tc.section, err)
			}
		})
	}
}

// TestRestoreOrColdStart checks the degraded path: a missing or damaged
// checkpoint falls back to a cold-started simulator, reports the
// absorbed failure, and ticks molcache_snapshot_restore_failures.
func TestRestoreOrColdStart(t *testing.T) {
	mcfg, rcfg := ckptConfig()
	dir := t.TempDir()

	t.Run("missing-file", func(t *testing.T) {
		reg := molcache.NewRegistry()
		sim, restoreErr, err := molcache.RestoreOrColdStart(
			filepath.Join(dir, "nope.molc"), mcfg, rcfg, nil, reg)
		if err != nil {
			t.Fatalf("cold start failed: %v", err)
		}
		if sim == nil || restoreErr == nil {
			t.Fatalf("want fallback sim + absorbed error, got sim=%v restoreErr=%v", sim, restoreErr)
		}
		if got := reg.Counter("molcache_snapshot_restore_failures").Value(); got != 1 {
			t.Errorf("restore failure counter = %d, want 1", got)
		}
		// The fallback simulator must be serviceable.
		sim.Access(molcache.Ref{Addr: 0x1000, ASID: 1})
	})

	t.Run("corrupt-file", func(t *testing.T) {
		path := filepath.Join(dir, "garbage.molc")
		if err := os.WriteFile(path, []byte("MOLC1 but not really"), 0o644); err != nil {
			t.Fatal(err)
		}
		reg := molcache.NewRegistry()
		sim, restoreErr, err := molcache.RestoreOrColdStart(path, mcfg, rcfg, nil, reg)
		if err != nil || sim == nil || restoreErr == nil {
			t.Fatalf("want fallback, got sim=%v restoreErr=%v err=%v", sim, restoreErr, err)
		}
		var se *molcache.SnapshotError
		if !errors.As(restoreErr, &se) {
			t.Errorf("absorbed error is not typed: %v", restoreErr)
		}
		if got := reg.Counter("molcache_snapshot_restore_failures").Value(); got != 1 {
			t.Errorf("restore failure counter = %d, want 1", got)
		}
	})

	t.Run("healthy-file", func(t *testing.T) {
		path := filepath.Join(dir, "good.molc")
		seedReg := molcache.NewRegistry()
		seed, _ := ckptSim(t, seedReg)
		if err := seed.Checkpoint(path); err != nil {
			t.Fatal(err)
		}
		reg := molcache.NewRegistry()
		sim, restoreErr, err := molcache.RestoreOrColdStart(path, mcfg, rcfg, nil, reg)
		if err != nil || restoreErr != nil || sim == nil {
			t.Fatalf("healthy restore: sim=%v restoreErr=%v err=%v", sim, restoreErr, err)
		}
		if got := reg.Counter("molcache_snapshot_restore_failures").Value(); got != 0 {
			t.Errorf("restore failure counter = %d, want 0", got)
		}
	})
}
