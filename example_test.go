package molcache_test

import (
	"fmt"

	"molcache"
)

// ExampleNewSimulator shows the shortest path to a running molecular
// cache: build the cache with its resize controller, drive references,
// read per-application results.
func ExampleNewSimulator() {
	sim, err := molcache.NewSimulator(
		molcache.MolecularConfig{TotalSize: 1 << 20, Policy: molcache.Randy, Seed: 1},
		molcache.ResizeConfig{DefaultGoal: 0.10},
	)
	if err != nil {
		panic(err)
	}
	// A 64KB loop: it fits comfortably, so after the cold fills the
	// partition serves everything.
	for sweep := 0; sweep < 50; sweep++ {
		for a := uint64(0); a < 64<<10; a += 64 {
			sim.Access(molcache.Ref{Addr: a, ASID: 1, Kind: molcache.Read})
		}
	}
	hm := sim.Cache.Ledger().App(1)
	fmt.Printf("accesses=%d missRate=%.2f\n", hm.Accesses(), hm.MissRate())
	// Output:
	// accesses=51200 missRate=0.02
}

// ExampleEstimatePower shows the CACTI-style model answering the paper's
// core power question: what does one access cost at a given geometry?
func ExampleEstimatePower() {
	molecule, err := molcache.EstimatePower(molcache.PowerGeometry{
		SizeBytes: 8 << 10, Assoc: 1, LineBytes: 64, Ports: 1,
	})
	if err != nil {
		panic(err)
	}
	bank, err := molcache.EstimatePower(molcache.PowerGeometry{
		SizeBytes: 8 << 20, Assoc: 1, LineBytes: 64, Ports: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("8KB molecule costs %.0fx less per probe than an 8MB bank\n",
		bank.AccessEnergy/molecule.AccessEnergy)
	// Output:
	// 8KB molecule costs 12x less per probe than an 8MB bank
}

// ExampleUniformGoals shows the QoS metric the paper's evaluation is
// built around.
func ExampleUniformGoals() {
	var ledger molcache.Ledger
	for i := 0; i < 80; i++ {
		ledger.Record(1, true)
	}
	for i := 0; i < 20; i++ {
		ledger.Record(1, false) // app 1: 20% miss
	}
	goals := molcache.UniformGoals(0.10, 1)
	fmt.Printf("deviation=%.2f\n", molcache.AverageDeviation(&ledger, goals))
	// Output:
	// deviation=0.10
}
