// Package molcache is a library-level reproduction of "Molecular Caches:
// A caching structure for dynamic creation of application-specific
// Heterogeneous cache regions" (MICRO 2006).
//
// A molecular cache aggregates small direct-mapped caching units
// (molecules) into tiles and tile clusters, and binds subsets of
// molecules to applications as exclusive cache regions with an
// ASID-gated decode path. Regions are resized at run time toward
// per-application miss-rate goals (the paper's Algorithm 1), use Random
// or Randy (row-hashed) molecule replacement over a 2-D replacement view
// with per-row associativity, and may fetch multiple lines per miss
// (variable line size).
//
// The package is a facade over the internal packages:
//
//   - NewMolecular / NewTraditional build the cache models;
//   - NewController attaches the dynamic resizing controller;
//   - NewSimulator couples a molecular cache with its controller;
//   - NewSystem builds the CMP substrate (cores + private L1s) that
//     generates L2 reference streams from the bundled workload models;
//   - NewWorkload instantiates the calibrated benchmark models;
//   - EstimatePower / EstimateMolecularPower run the CACTI-style model.
//
// The experiments reproducing the paper's tables and figures live in
// cmd/experiments; runnable examples live in examples/.
package molcache

import (
	"io"

	"molcache/internal/cache"
	"molcache/internal/cmp"
	"molcache/internal/engine"
	"molcache/internal/faults"
	"molcache/internal/invariant"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/noc"
	"molcache/internal/partition"
	"molcache/internal/power"
	"molcache/internal/resize"
	"molcache/internal/shard"
	"molcache/internal/stackdist"
	"molcache/internal/stats"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

// Core model types.
type (
	// Ref is one memory reference (address, ASID, CPU, read/write).
	Ref = trace.Ref
	// Kind distinguishes reads from writes.
	Kind = trace.Kind
	// AccessResult reports the externally visible effects of one cache
	// access (hit, fetches, writebacks, molecules probed).
	AccessResult = engine.Result
	// Cache is the interface every cache model implements.
	Cache = engine.Cache

	// MolecularConfig configures a molecular cache.
	MolecularConfig = molecular.Config
	// MolecularCache is the paper's contribution: tiles of molecules
	// serving per-application regions.
	MolecularCache = molecular.Cache
	// Region is an application-specific cache partition.
	Region = molecular.Region
	// RegionOptions customizes partition creation.
	RegionOptions = molecular.RegionOptions
	// ReplacementKind selects Random, Randy or LRU-Direct replacement.
	ReplacementKind = molecular.ReplacementKind

	// TraditionalConfig configures a set-associative baseline cache.
	TraditionalConfig = cache.Config
	// TraditionalCache is the set-associative baseline model.
	TraditionalCache = cache.Cache
	// PolicyKind selects the baseline replacement policy.
	PolicyKind = cache.PolicyKind

	// ResizeConfig configures the dynamic resizing controller.
	ResizeConfig = resize.Config
	// Controller drives Algorithm 1 over a molecular cache.
	Controller = resize.Controller
	// ResizeEvent records one resize decision.
	ResizeEvent = resize.Event
	// ResizeDecision is one reasoned entry of the controller's decision
	// log: Algorithm 1's inputs (miss rate, goal, free pool, period), the
	// action it chose and a human-readable reason. Controller.Decisions
	// returns the retained log; Controller.DecisionCount counts every
	// decision ever made (the log is a bounded ring).
	ResizeDecision = resize.Decision
	// TriggerKind selects constant or adaptive resize scheduling.
	TriggerKind = resize.TriggerKind

	// SystemConfig configures the CMP substrate.
	SystemConfig = cmp.Config
	// System is the CMP substrate: cores with private L1s sharing an L2.
	System = cmp.System
	// Latency is the CMP timing model.
	Latency = cmp.Latency

	// Generator produces a deterministic reference stream.
	Generator = workload.Generator
	// Access is one generated reference.
	Access = workload.Access

	// PowerGeometry describes a traditional cache for the power model.
	PowerGeometry = power.Geometry
	// PowerEstimate is the power model output.
	PowerEstimate = power.Estimate
	// MolecularPowerGeometry describes a molecular cache for the model.
	MolecularPowerGeometry = power.MolecularGeometry
	// MolecularPowerEstimate is the molecular power model output.
	MolecularPowerEstimate = power.MolecularEstimate

	// Goals maps ASIDs to miss-rate goals for QoS metrics.
	Goals = metrics.Goals
	// HitMiss is a hit/miss counter pair.
	HitMiss = stats.HitMiss
	// Ledger tracks hit/miss counts per ASID.
	Ledger = stats.Ledger

	// Mesh models the tile interconnection network.
	Mesh = noc.Mesh

	// Profiler computes LRU stack-distance (miss-ratio-curve) profiles.
	Profiler = stackdist.Profiler
	// MissRatioCurve is a per-application LRU miss-rate-vs-size curve.
	MissRatioCurve = stackdist.Curve
	// OracleAllocation is a perfect-information static partition.
	OracleAllocation = stackdist.Allocation

	// ModifiedLRU is Suh et al.'s quota-partitioned shared cache.
	ModifiedLRU = partition.ModifiedLRU
	// ColumnCache is Suh et al.'s way-restricted shared cache.
	ColumnCache = partition.ColumnCache
	// HomeBank is a POCA-style process-ownership banked cache.
	HomeBank = partition.HomeBank

	// Tracer records structured simulation events into a ring buffer
	// and optional sink. A nil *Tracer is a valid no-op.
	Tracer = telemetry.Tracer
	// TelemetryEvent is one traced event.
	TelemetryEvent = telemetry.Event
	// TelemetryKind classifies traced events.
	TelemetryKind = telemetry.Kind
	// TelemetrySink receives every traced event (JSONL or in-memory).
	TelemetrySink = telemetry.Sink
	// MemorySink buffers traced events in memory (tests, examples).
	MemorySink = telemetry.MemorySink
	// JSONLSink streams traced events as JSON lines.
	JSONLSink = telemetry.JSONLSink
	// Registry is a live metrics registry of counters, gauges and
	// histograms with Prometheus-text and JSON snapshot exporters.
	Registry = telemetry.Registry
	// MetricsSnapshot is a point-in-time registry capture.
	MetricsSnapshot = telemetry.Snapshot
	// ProfileConfig wires -cpuprofile / -memprofile / -trace flags.
	ProfileConfig = telemetry.ProfileConfig
	// SpanTracer samples accesses deterministically (1 in every) and
	// records each pipeline stage of a sampled access as a nested span.
	// A nil *SpanTracer is a valid no-op; WriteChromeTrace exports the
	// buffer in Chrome trace-event format (Perfetto/chrome://tracing).
	SpanTracer = telemetry.SpanTracer
	// SpanEvent is one recorded pipeline span.
	SpanEvent = telemetry.SpanEvent

	// FaultCampaign is a deterministic schedule of hardware faults
	// (molecule failures, line corruptions, NoC delays) keyed to the
	// cache's access count. Parsable from JSON.
	FaultCampaign = faults.Campaign
	// FaultInjector delivers a materialized campaign to the cache.
	FaultInjector = faults.Injector
	// FaultStats counts delivered faults per class.
	FaultStats = faults.Stats
	// MoleculeFailure is a scheduled permanent molecule failure.
	MoleculeFailure = faults.MoleculeFailure
	// LineCorruption is a scheduled transient line corruption.
	LineCorruption = faults.LineCorruption
	// NoCDelay is a window of delayed/dropped interconnect responses.
	NoCDelay = faults.NoCDelay
	// FaultRandomSpec expands into seeded-random fault events.
	FaultRandomSpec = faults.RandomSpec
	// DegradationStats counts the cache's graceful-degradation actions
	// (retirements, writebacks, NoC retries, uncached bypasses).
	DegradationStats = molecular.DegradationStats
	// RetireReport describes one molecule retirement.
	RetireReport = molecular.RetireReport

	// ShardedEngine replays references through a molecular cache on
	// multiple goroutines (one per cluster shard) with epoch-based
	// synchronization; its AccessBatch is byte-identical to the serial
	// per-access loop at any shard count. Build one with NewShardedEngine
	// or Simulator.Sharded.
	ShardedEngine = shard.Engine

	// InvariantSnapshot is a pure-data capture of simulator state for
	// auditing.
	InvariantSnapshot = invariant.Snapshot
	// InvariantViolation is one broken structural invariant.
	InvariantViolation = invariant.Violation
	// InvariantChecker audits a snapshot source every N ticks or on
	// demand.
	InvariantChecker = invariant.Checker
)

// Reference kinds.
const (
	Read  = trace.Read
	Write = trace.Write
)

// Molecule replacement policies (the paper's two plus the future-work
// LRU-Direct extension).
const (
	Random    = molecular.RandomReplacement
	Randy     = molecular.RandyReplacement
	LRUDirect = molecular.LRUDirect
)

// Baseline replacement policies.
const (
	LRU        = cache.LRU
	FIFO       = cache.FIFO
	RandomWays = cache.Random
	PLRU       = cache.PLRU
)

// Resize triggers.
const (
	ConstantTrigger       = resize.Constant
	AdaptiveGlobalTrigger = resize.AdaptiveGlobal
	AdaptivePerAppTrigger = resize.AdaptivePerApp
)

// SharedASID marks shared-bit molecules that serve every application.
const SharedASID = molecular.SharedASID

// Telemetry event kinds.
const (
	KindAccess          = telemetry.KindAccess
	KindRegionCreate    = telemetry.KindRegionCreate
	KindRegionGrow      = telemetry.KindRegionGrow
	KindRegionShrink    = telemetry.KindRegionShrink
	KindRegionRebalance = telemetry.KindRegionRebalance
	KindRegionRehome    = telemetry.KindRegionRehome
	KindResize          = telemetry.KindResize
	KindInvalidate      = telemetry.KindInvalidate
	KindDowngrade       = telemetry.KindDowngrade
	KindMoleculeRetire  = telemetry.KindMoleculeRetire
	KindLineCorrupt     = telemetry.KindLineCorrupt
	KindNoCFault        = telemetry.KindNoCFault
)

// Tech70 is the paper's 70 nm process model.
var Tech70 = power.Tech70

// NewMolecular builds a molecular cache.
func NewMolecular(cfg MolecularConfig) (*MolecularCache, error) {
	return molecular.New(cfg)
}

// NewTraditional builds a set-associative baseline cache.
func NewTraditional(cfg TraditionalConfig) (*TraditionalCache, error) {
	return cache.New(cfg)
}

// NewController attaches a resize controller to a molecular cache.
func NewController(c *MolecularCache, cfg ResizeConfig) (*Controller, error) {
	return resize.New(c, cfg)
}

// NewSystem builds the CMP substrate over the shared L2.
func NewSystem(l2 Cache, cfg SystemConfig) (*System, error) {
	return cmp.New(l2, cfg)
}

// NewWorkload instantiates one of the calibrated benchmark models
// (Workloads lists them) rooted at base, deterministic in seed.
func NewWorkload(name string, base, seed uint64) (Generator, error) {
	return workload.New(name, base, seed)
}

// Workloads returns the available benchmark model names.
func Workloads() []string { return workload.Names() }

// EstimatePower runs the CACTI-style model for a traditional geometry.
func EstimatePower(g PowerGeometry) (PowerEstimate, error) {
	return power.Model(g, power.Tech70)
}

// EstimateMolecularPower runs the model for a molecular geometry.
func EstimateMolecularPower(g MolecularPowerGeometry) (MolecularPowerEstimate, error) {
	return power.ModelMolecular(g, power.Tech70)
}

// NewMesh builds a w x h tile interconnection mesh (zero latency/energy
// arguments select the 70nm defaults).
func NewMesh(w, h int, hopLatency uint64, hopEnergy float64) (*Mesh, error) {
	return noc.New(w, h, hopLatency, hopEnergy)
}

// MeshForTiles builds a near-square mesh sized for n tiles.
func MeshForTiles(n int) (*Mesh, error) { return noc.ForTiles(n) }

// NewProfiler builds a stack-distance profiler over the given line size.
func NewProfiler(lineSize uint64) *Profiler { return stackdist.New(lineSize) }

// OraclePartition computes a perfect-information static partition from
// miss-ratio curves (see internal/stackdist).
func OraclePartition(curves map[uint16]*MissRatioCurve, goals map[uint16]float64,
	totalLines, chunk int) (*OracleAllocation, error) {
	return stackdist.OraclePartition(curves, goals, totalLines, chunk)
}

// NewModifiedLRU builds Suh et al.'s quota-partitioned cache.
func NewModifiedLRU(size uint64, ways int, lineSize uint64, defaultQuota uint64) (*ModifiedLRU, error) {
	return partition.NewModifiedLRU(size, ways, lineSize, defaultQuota)
}

// NewColumnCache builds Suh et al.'s way-restricted cache.
func NewColumnCache(size uint64, ways int, lineSize uint64) (*ColumnCache, error) {
	return partition.NewColumnCache(size, ways, lineSize)
}

// NewHomeBank builds a POCA-style banked cache.
func NewHomeBank(banks int, bankSize uint64, ways int, lineSize uint64) (*HomeBank, error) {
	return partition.NewHomeBank(banks, bankSize, ways, lineSize)
}

// AverageDeviation computes the paper's QoS metric: the mean excess over
// the miss-rate goal across goal-bearing applications.
func AverageDeviation(l *Ledger, goals Goals) float64 {
	return metrics.AverageDeviation(l, goals)
}

// UniformGoals assigns the same miss-rate goal to every listed ASID.
func UniformGoals(goal float64, asids ...uint16) Goals {
	return metrics.UniformGoals(goal, asids...)
}

// NewTracer builds an event tracer holding the last ringSize events
// (<= 0 selects the default). A nil *Tracer is a valid no-op tracer.
func NewTracer(ringSize int) *Tracer { return telemetry.NewTracer(ringSize) }

// NewRegistry builds an empty metrics registry. A nil *Registry is a
// valid no-op registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewSpanTracer builds a span tracer sampling one access in `every`
// (0 selects the default 1-in-64) with a buffer of `limit` spans
// (<= 0 selects the default). A nil *SpanTracer is a valid no-op.
func NewSpanTracer(every uint64, limit int) *SpanTracer {
	return telemetry.NewSpanTracer(every, limit)
}

// ParseMetricsJSON parses a JSON metrics snapshot (Snapshot.JSON's
// output) back into a MetricsSnapshot.
func ParseMetricsJSON(data []byte) (MetricsSnapshot, error) {
	return telemetry.ParseJSON(data)
}

// ParseMetricsPrometheus parses a Prometheus text-format page
// (Snapshot.Prometheus's output) back into a MetricsSnapshot.
func ParseMetricsPrometheus(r io.Reader) (MetricsSnapshot, error) {
	return telemetry.ParsePrometheus(r)
}

// ParseFaultCampaign parses a JSON fault campaign (unknown fields are
// rejected).
func ParseFaultCampaign(data []byte) (FaultCampaign, error) {
	return faults.Parse(data)
}

// LoadFaultCampaign reads and parses a JSON fault campaign file.
func LoadFaultCampaign(path string) (FaultCampaign, error) {
	return faults.Load(path)
}

// NewFaultInjector validates a campaign and prepares it for delivery;
// attach it with MolecularCache.AttachFaults or Simulator.InjectFaults.
func NewFaultInjector(c FaultCampaign) (*FaultInjector, error) {
	return faults.NewInjector(c)
}

// CaptureInvariants snapshots a molecular cache's structural state for
// invariant checking.
func CaptureInvariants(c *MolecularCache) InvariantSnapshot {
	return invariant.CaptureCache(c)
}

// CheckInvariants audits a snapshot and returns every violation found.
func CheckInvariants(s InvariantSnapshot) []InvariantViolation {
	return invariant.Check(s)
}

// NewInvariantChecker audits a molecular cache every `every` ticks
// (0 disables periodic audits; Run audits on demand).
func NewInvariantChecker(c *MolecularCache, every uint64) *InvariantChecker {
	return invariant.NewChecker(invariant.CacheSource(c), every)
}

// NewSystemInvariantChecker audits a whole CMP — the shared L2's
// structure plus MESI directory/L1 agreement.
func NewSystemInvariantChecker(sys *System, every uint64) *InvariantChecker {
	return invariant.NewChecker(invariant.SystemSource(sys), every)
}

// NewMemorySink buffers traced events in memory.
func NewMemorySink() *MemorySink { return telemetry.NewMemorySink() }

// NewJSONLSink streams traced events to w as JSON lines.
func NewJSONLSink(w io.Writer) *JSONLSink { return telemetry.NewJSONLSink(w) }

// Simulator couples a molecular cache with its resize controller so that
// every access also ticks Algorithm 1's trigger — the common way to
// drive the system.
type Simulator struct {
	Cache      *MolecularCache
	Controller *Controller
}

// NewSimulator builds the cache and controller together.
func NewSimulator(mcfg MolecularConfig, rcfg ResizeConfig) (*Simulator, error) {
	c, err := molecular.New(mcfg)
	if err != nil {
		return nil, err
	}
	ctrl, err := resize.New(c, rcfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{Cache: c, Controller: ctrl}, nil
}

// AttachTelemetry routes both the cache's and the controller's
// observations through tr (structured events) and reg (live metrics).
// Either may be nil; attaching nil detaches.
func (s *Simulator) AttachTelemetry(tr *Tracer, reg *Registry) {
	s.Cache.AttachTelemetry(tr, reg)
	s.Controller.AttachTelemetry(tr, reg)
}

// AttachSpans routes both the cache's access pipeline and the
// controller's resize passes through st as sampled nested spans.
// Attaching nil detaches; the unsampled and detached paths are
// allocation-free.
func (s *Simulator) AttachSpans(st *SpanTracer) {
	s.Cache.AttachSpans(st)
	s.Controller.AttachSpans(st)
}

// InjectFaults attaches a fault campaign to the simulator's cache.
// Scheduled faults are delivered as the access count advances; failed
// molecules are retired (lines written back and invalidated) and the
// next resize epoch re-grows the shrunken regions from healthy spares.
// A zero-value campaign detaches fault injection.
func (s *Simulator) InjectFaults(c FaultCampaign) error {
	var inj *FaultInjector
	if c.Seed != 0 || len(c.MoleculeFailures) > 0 || len(c.LineCorruptions) > 0 ||
		len(c.NoCDelays) > 0 || c.RandomMoleculeFailures != nil ||
		c.RandomLineCorruptions != nil {
		var err error
		if inj, err = faults.NewInjector(c); err != nil {
			return err
		}
	}
	return s.Cache.AttachFaults(inj)
}

// FaultStats reports delivered fault counts, or a zero value when no
// campaign is attached.
func (s *Simulator) FaultStats() FaultStats {
	if inj := s.Cache.Faults(); inj != nil {
		return inj.Stats()
	}
	return FaultStats{}
}

// Degradation reports the cache's graceful-degradation counters.
func (s *Simulator) Degradation() DegradationStats { return s.Cache.Degradation() }

// CheckInvariants audits the simulator's structural invariants on
// demand and returns every violation found (nil when healthy).
func (s *Simulator) CheckInvariants() []InvariantViolation {
	return invariant.Check(invariant.CaptureCache(s.Cache))
}

// Access applies one reference and runs the resize trigger.
func (s *Simulator) Access(r Ref) AccessResult {
	res := s.Cache.Access(r)
	s.Controller.Tick()
	return res
}

// AccessBatch applies a batch of references — the fold of Access, so a
// Simulator satisfies engine.Batcher and drivers can amortize per-call
// overhead uniformly. For concurrent batches use Sharded.
func (s *Simulator) AccessBatch(refs []Ref) []AccessResult {
	out := make([]AccessResult, len(refs))
	for i, r := range refs {
		out[i] = s.Access(r)
	}
	return out
}

// Sharded wraps the simulator in an epoch-parallel engine running the
// access pipeline across `shards` cluster shards (clamped to
// [1, clusters]). The engine's AccessBatch returns exactly the Results
// — and leaves exactly the ledgers, telemetry, decision logs and
// structural state — the serial Access loop would have; see
// internal/shard for the determinism argument.
func (s *Simulator) Sharded(shards int) *ShardedEngine {
	return shard.New(s.Cache, s.Controller, shards)
}

// NewShardedEngine builds an epoch-parallel engine over a cache and
// controller directly (ctrl may be nil when no resizing is driven).
func NewShardedEngine(c *MolecularCache, ctrl *Controller, shards int) *ShardedEngine {
	return shard.New(c, ctrl, shards)
}

// Run replays a reference slice through the simulator and returns the
// per-ASID ledger.
func (s *Simulator) Run(refs []Ref) *Ledger {
	for _, r := range refs {
		s.Access(r)
	}
	return s.Cache.Ledger()
}
