// Differential oracle for the sharded access engine: every
// configuration drives two identically seeded molecular caches — one
// through the serial per-access loop, one through internal/shard's
// epoch-parallel AccessBatch — over the same randomized trace with
// resize controllers, a mesh, full telemetry (event tracer, registry,
// span tracer) and, in half the configurations, identical fault
// campaigns. The contract under test is strict: per-access Results,
// end-state ledgers, probe histograms, NoC statistics, degradation
// counters, registry snapshots, the complete ordered event stream, the
// complete span trace, resize decision logs and structural invariant
// captures must all be byte-identical at every shard count. Any
// divergence means epoch planning or the lane merge broke determinism.
package molcache_test

import (
	"fmt"
	"reflect"
	"testing"

	"molcache"

	"molcache/internal/engine"
	"molcache/internal/invariant"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/rng"
	"molcache/internal/shard"
	"molcache/internal/telemetry"
)

// shardDiffChunk is the batch size both sides advance by between
// coherence probes. Probes and rehomes are cross-engine mutations, so
// the oracle only issues them at chunk boundaries, where the sharded
// engine is quiescent — exactly the contract a real driver has.
const shardDiffChunk = 512

// shardDiffConfig is an 8-cluster geometry (16 tiles, 128 molecules) so
// every shard count in {1, 2, 4, 8} owns at least one whole cluster.
func shardDiffConfig(policy molecular.ReplacementKind) molecular.Config {
	return molecular.Config{
		TotalSize:       1 << 20,
		MoleculeSize:    8 << 10,
		TilesPerCluster: 2,
		Clusters:        8,
		Policy:          policy,
		LineFactor:      2,
		Seed:            2006,
	}
}

// shardDiffSide builds one fully instrumented side: cache, shared
// region, mesh, resize controller, event tracer with a ring large
// enough to never rotate, registry, and span tracer on both the access
// pipeline and the controller.
func shardDiffSide(t *testing.T, cfg molecular.Config, withFaults bool) (*molecular.Cache, *resize.Controller, *telemetry.Tracer, *telemetry.Registry, *telemetry.SpanTracer) {
	t.Helper()
	c, ctrl, reg := diffCache(t, cfg, withFaults)
	tr := telemetry.NewTracer(1 << 16)
	c.AttachTelemetry(tr, reg)
	spans := telemetry.NewSpanTracer(7, 0)
	c.AttachSpans(spans)
	ctrl.AttachSpans(spans)
	return c, ctrl, tr, reg, spans
}

// compareShardEndState asserts every observable end-state artifact of
// the two sides is identical.
func compareShardEndState(t *testing.T, label string,
	sc, hc *molecular.Cache, sCtrl, hCtrl *resize.Controller,
	sTr, hTr *telemetry.Tracer, sReg, hReg *telemetry.Registry,
	sSpans, hSpans *telemetry.SpanTracer) {
	t.Helper()
	if !reflect.DeepEqual(*sc.Ledger(), *hc.Ledger()) {
		t.Errorf("%s: ledgers diverged: serial %+v, sharded %+v", label, *sc.Ledger(), *hc.Ledger())
	}
	for _, asid := range []uint16{1, 2, 3, molecular.SharedASID} {
		if s, h := sc.Ledger().App(asid), hc.Ledger().App(asid); s != h {
			t.Errorf("%s: asid %d ledger diverged: serial %+v, sharded %+v", label, asid, s, h)
		}
	}
	if !reflect.DeepEqual(sc.ProbeHistogram(), hc.ProbeHistogram()) {
		t.Errorf("%s: probe histograms diverged", label)
	}
	if s, h := sc.RemoteCycles(), hc.RemoteCycles(); s != h {
		t.Errorf("%s: remote cycles diverged: serial %d, sharded %d", label, s, h)
	}
	if s, h := sc.Degradation(), hc.Degradation(); s != h {
		t.Errorf("%s: degradation stats diverged: serial %+v, sharded %+v", label, s, h)
	}
	if s, h := sc.Interconnect().Stats(), hc.Interconnect().Stats(); s != h {
		t.Errorf("%s: NoC stats diverged: serial %+v, sharded %+v", label, s, h)
	}
	if sc.Faults() != nil {
		if s, h := sc.Faults().Stats(), hc.Faults().Stats(); s != h {
			t.Errorf("%s: fault stats diverged: serial %+v, sharded %+v", label, s, h)
		}
	}
	ss, hs := sReg.Snapshot(), hReg.Snapshot()
	if !reflect.DeepEqual(ss.Counters, hs.Counters) {
		t.Errorf("%s: telemetry counters diverged:\nserial: %v\nsharded: %v", label, ss.Counters, hs.Counters)
	}
	if !reflect.DeepEqual(ss.Gauges, hs.Gauges) {
		t.Errorf("%s: telemetry gauges diverged:\nserial: %v\nsharded: %v", label, ss.Gauges, hs.Gauges)
	}
	if !reflect.DeepEqual(ss.Histograms, hs.Histograms) {
		t.Errorf("%s: telemetry histograms diverged:\nserial: %v\nsharded: %v", label, ss.Histograms, hs.Histograms)
	}
	// The ordered event streams must match event for event, sequence
	// numbers included — the strongest statement that the merge replays
	// the serial emission order.
	if s, h := sTr.Emitted(), hTr.Emitted(); s != h {
		t.Errorf("%s: event counts diverged: serial %d, sharded %d", label, s, h)
	}
	if !reflect.DeepEqual(sTr.Events(), hTr.Events()) {
		sev, hev := sTr.Events(), hTr.Events()
		n := len(sev)
		if len(hev) < n {
			n = len(hev)
		}
		for i := 0; i < n; i++ {
			if sev[i] != hev[i] {
				t.Errorf("%s: event %d diverged: serial %+v, sharded %+v", label, i, sev[i], hev[i])
				break
			}
		}
		t.Errorf("%s: event streams diverged (%d serial, %d sharded)", label, len(sev), len(hev))
	}
	// Span traces: identical sampled-access counts, drop counts, and
	// span-for-span equality after the batch rebase.
	if s, h := sSpans.SampledAccesses(), hSpans.SampledAccesses(); s != h {
		t.Errorf("%s: sampled accesses diverged: serial %d, sharded %d", label, s, h)
	}
	if s, h := sSpans.Drops(), hSpans.Drops(); s != h {
		t.Errorf("%s: span drops diverged: serial %d, sharded %d", label, s, h)
	}
	if !reflect.DeepEqual(sSpans.Spans(), hSpans.Spans()) {
		sv, hv := sSpans.Spans(), hSpans.Spans()
		n := len(sv)
		if len(hv) < n {
			n = len(hv)
		}
		for i := 0; i < n; i++ {
			if sv[i] != hv[i] {
				t.Errorf("%s: span %d diverged: serial %+v, sharded %+v", label, i, sv[i], hv[i])
				break
			}
		}
		t.Errorf("%s: span traces diverged (%d serial, %d sharded)", label, len(sv), len(hv))
	}
	if sSpans.Len() == 0 {
		t.Errorf("%s: span tracer recorded nothing", label)
	}
	if !reflect.DeepEqual(sCtrl.Decisions(), hCtrl.Decisions()) {
		t.Errorf("%s: decision logs diverged:\nserial: %+v\nsharded: %+v", label, sCtrl.Decisions(), hCtrl.Decisions())
	}
	scap, hcap := invariant.CaptureCache(sc), invariant.CaptureCache(hc)
	if !reflect.DeepEqual(scap, hcap) {
		t.Errorf("%s: invariant captures diverged", label)
	}
	if vs := invariant.Check(hcap); len(vs) != 0 {
		t.Errorf("%s: sharded capture has violations: %v", label, vs)
	}
}

// TestDifferentialSerialVsSharded is the serial-vs-sharded oracle lock:
// every replacement policy × shard count {1, 2, 4, 8} × fault toggle,
// 12k accesses each, zero tolerated divergence anywhere observable.
func TestDifferentialSerialVsSharded(t *testing.T) {
	policies := []molecular.ReplacementKind{
		molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
	}
	for _, policy := range policies {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, withFaults := range []bool{false, true} {
				name := fmt.Sprintf("%s/shards=%d/faults=%v", policy, shards, withFaults)
				policy, shards, withFaults := policy, shards, withFaults
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := shardDiffConfig(policy)
					sc, sCtrl, sTr, sReg, sSpans := shardDiffSide(t, cfg, withFaults)
					hc, hCtrl, hTr, hReg, hSpans := shardDiffSide(t, cfg, withFaults)
					eng := shard.New(hc, hCtrl, shards)
					if eng.Shards() != shards {
						t.Fatalf("shard count clamped: want %d, got %d", shards, eng.Shards())
					}

					refs := diffTrace(7 + uint64(shards))
					probe := rng.New(99)
					for base := 0; base < len(refs); base += shardDiffChunk {
						end := base + shardDiffChunk
						if end > len(refs) {
							end = len(refs)
						}
						chunk := refs[base:end]
						// Serial side: the reference per-access loop.
						serialRes := make([]engine.Result, len(chunk))
						for i, r := range chunk {
							serialRes[i] = sc.Access(r)
							sCtrl.Tick()
						}
						// Sharded side: one epoch-parallel batch.
						shardedRes := eng.AccessBatch(chunk)
						for i := range chunk {
							if serialRes[i] != shardedRes[i] {
								t.Fatalf("access %d (%v): serial %+v != sharded %+v",
									base+i, chunk[i], serialRes[i], shardedRes[i])
							}
						}
						// Chunk-boundary cross-engine traffic: coherence
						// probes, invalidations, and a rehome, applied to
						// both sides identically.
						a := uint64(1+probe.Intn(3))<<32 | uint64(probe.Intn(1024))*64
						if s, h := sc.Contains(a), hc.Contains(a); s != h {
							t.Fatalf("chunk %d: Contains(%#x) serial %v != sharded %v", base, a, s, h)
						}
						if (base/shardDiffChunk)%3 == 1 {
							addr := refs[probe.Intn(end)].Addr
							sp, sd := sc.Invalidate(addr)
							hp, hd := hc.Invalidate(addr)
							if sp != hp || sd != hd {
								t.Fatalf("chunk %d: Invalidate(%#x) serial (%v,%v) != sharded (%v,%v)",
									base, addr, sp, sd, hp, hd)
							}
						}
						if base > 0 && (base/shardDiffChunk)%8 == 0 {
							tile := (base / shardDiffChunk / 8) % cfg.TilesPerCluster
							if err := sc.Rehome(1, tile); err != nil {
								t.Fatal(err)
							}
							if err := hc.Rehome(1, tile); err != nil {
								t.Fatal(err)
							}
						}
					}
					compareShardEndState(t, name, sc, hc, sCtrl, hCtrl, sTr, hTr, sReg, hReg, sSpans, hSpans)
				})
			}
		}
	}
}

// TestShardedCheckpointRestoreCompatibility is the checkpoint leg: a
// MOLC1 snapshot taken mid-trace under the *sharded* engine must
// restore into either engine, and both continuations — plus an
// uninterrupted serial run — must stay byte-identical to the end.
func TestShardedCheckpointRestoreCompatibility(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		withFaults := withFaults
		t.Run(fmt.Sprintf("faults=%v", withFaults), func(t *testing.T) {
			t.Parallel()
			cfg := shardDiffConfig(molecular.RandyReplacement)
			// Side A: uninterrupted serial run. Side B: sharded run
			// checkpointed at the cut and abandoned.
			aCache, aCtrl, aReg := diffCache(t, cfg, withFaults)
			bCache, bCtrl, bReg := diffCache(t, cfg, withFaults)
			aCtrl.AttachTelemetry(nil, aReg)
			bCtrl.AttachTelemetry(nil, bReg)
			a := &molcache.Simulator{Cache: aCache, Controller: aCtrl}
			b := &molcache.Simulator{Cache: bCache, Controller: bCtrl}
			bEng := shard.New(bCache, bCtrl, 4)

			refs := diffTrace(77)
			cut := (len(refs) / 2 / shardDiffChunk) * shardDiffChunk
			for base := 0; base < cut; base += shardDiffChunk {
				chunk := refs[base:minInt(base+shardDiffChunk, cut)]
				serialRes := make([]engine.Result, len(chunk))
				for i, r := range chunk {
					serialRes[i] = a.Access(r)
				}
				shardedRes := bEng.AccessBatch(chunk)
				for i := range chunk {
					if serialRes[i] != shardedRes[i] {
						t.Fatalf("pre-cut access %d: serial %+v != sharded %+v", base+i, serialRes[i], shardedRes[i])
					}
				}
			}
			data, err := b.EncodeCheckpoint()
			if err != nil {
				t.Fatalf("EncodeCheckpoint: %v", err)
			}

			// Restore the sharded-engine snapshot twice: C continues
			// serially, D continues sharded (at a different shard count
			// than produced it, which must not matter).
			cReg := telemetry.NewRegistry()
			c, err := molcache.RestoreSimulatorBytes(data, nil, cReg)
			if err != nil {
				t.Fatalf("RestoreSimulatorBytes (serial continuation): %v", err)
			}
			dReg := telemetry.NewRegistry()
			d, err := molcache.RestoreSimulatorBytes(data, nil, dReg)
			if err != nil {
				t.Fatalf("RestoreSimulatorBytes (sharded continuation): %v", err)
			}
			dEng := shard.New(d.Cache, d.Controller, 2)
			if bc, cc := invariant.CaptureCache(b.Cache), invariant.CaptureCache(c.Cache); !reflect.DeepEqual(bc, cc) {
				t.Fatal("restored capture differs from checkpointed capture")
			}

			for base := cut; base < len(refs); base += shardDiffChunk {
				chunk := refs[base:minInt(base+shardDiffChunk, len(refs))]
				aRes := make([]engine.Result, len(chunk))
				for i, r := range chunk {
					aRes[i] = a.Access(r)
					if rc := c.Access(r); aRes[i] != rc {
						t.Fatalf("post-restore access %d: uninterrupted %+v != serial continuation %+v",
							base+i, aRes[i], rc)
					}
				}
				dRes := dEng.AccessBatch(chunk)
				for i := range chunk {
					if aRes[i] != dRes[i] {
						t.Fatalf("post-restore access %d: uninterrupted %+v != sharded continuation %+v",
							base+i, aRes[i], dRes[i])
					}
				}
			}

			// Both continuations must land on the uninterrupted run's
			// exact end state.
			for _, side := range []struct {
				name string
				sim  *molcache.Simulator
				reg  *telemetry.Registry
			}{{"serial continuation", c, cReg}, {"sharded continuation", d, dReg}} {
				if !reflect.DeepEqual(*a.Cache.Ledger(), *side.sim.Cache.Ledger()) {
					t.Errorf("%s: ledgers diverged: %+v vs %+v", side.name, *a.Cache.Ledger(), *side.sim.Cache.Ledger())
				}
				if !reflect.DeepEqual(a.Cache.ProbeHistogram(), side.sim.Cache.ProbeHistogram()) {
					t.Errorf("%s: probe histograms diverged", side.name)
				}
				if x, y := a.Cache.RemoteCycles(), side.sim.Cache.RemoteCycles(); x != y {
					t.Errorf("%s: remote cycles diverged: %d vs %d", side.name, x, y)
				}
				if x, y := a.Cache.Degradation(), side.sim.Cache.Degradation(); x != y {
					t.Errorf("%s: degradation stats diverged: %+v vs %+v", side.name, x, y)
				}
				as, os := aReg.Snapshot(), side.reg.Snapshot()
				if !reflect.DeepEqual(as.Counters, os.Counters) {
					t.Errorf("%s: telemetry counters diverged:\nuninterrupted: %v\ncontinued: %v",
						side.name, as.Counters, os.Counters)
				}
				if !reflect.DeepEqual(as.Histograms, os.Histograms) {
					t.Errorf("%s: telemetry histograms diverged", side.name)
				}
				if !reflect.DeepEqual(a.Controller.Decisions(), side.sim.Controller.Decisions()) {
					t.Errorf("%s: decision logs diverged", side.name)
				}
				acap, ocap := invariant.CaptureCache(a.Cache), invariant.CaptureCache(side.sim.Cache)
				if !reflect.DeepEqual(acap, ocap) {
					t.Errorf("%s: invariant captures diverged", side.name)
				}
				if vs := invariant.Check(ocap); len(vs) != 0 {
					t.Errorf("%s: capture has violations: %v", side.name, vs)
				}
			}
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
