// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out and micro-benchmarks of the hot paths.
//
// Reproduction benches report their headline quantity through
// b.ReportMetric (deviation, watts, advantage %) so a bench run doubles
// as a compact results table. They use reduced reference counts; the
// full-scale numbers in EXPERIMENTS.md come from cmd/experiments.
package molcache_test

import (
	"sync"
	"testing"

	"molcache"
	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/experiments"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

// benchOpts trims the experiments to benchmark-friendly sizes.
var benchOpts = experiments.Options{ProcessorRefs: 4_000_000, Seed: 2006}

// BenchmarkTable1 regenerates the interference study (11 workload
// combinations on a shared 1MB 4-way L2).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		quad := rows[len(rows)-1]
		b.ReportMetric(quad.MissRate["art"], "art-all4-missrate")
		alone, _ := experiments.Standalone(rows, "art")
		b.ReportMetric(alone, "art-alone-missrate")
	}
}

// BenchmarkFigure5 regenerates the deviation-vs-size study (24 cache
// configurations, one captured trace).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure5(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Config == "Molecular (Randy)" && p.Size == 8*addr.MB {
				b.ReportMetric(p.DeviationA, "randy-8MB-devA")
				b.ReportMetric(p.DeviationB, "randy-8MB-devB")
			}
		}
	}
}

// table2Cached computes the Table 2 result once per bench process; the
// downstream benches (Figure 6, Tables 4-5, headline) reuse it the same
// way the paper's pipeline does.
var table2Cached = sync.OnceValues(func() (*experiments.Table2Result, error) {
	return experiments.Table2(benchOpts)
})

// BenchmarkTable2 regenerates the mixed-workload deviation table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2, err := experiments.Table2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t2.Rows {
			if r.Name == "6MB Molecular (Randy)" {
				b.ReportMetric(r.Deviation, "molecular-deviation")
			}
			if r.Name == "8MB 8-way" {
				b.ReportMetric(r.Deviation, "8MB8way-deviation")
			}
		}
	}
}

// BenchmarkFigure6 regenerates the hits-per-molecule comparison.
func BenchmarkFigure6(b *testing.B) {
	t2, err := table2Cached()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f6 := experiments.Figure6(t2)
		b.ReportMetric(f6.RandyMissRate, "randy-missrate")
		b.ReportMetric(f6.RandomMissRate, "random-missrate")
	}
}

// BenchmarkTable4 regenerates the power table (CACTI-style model plus a
// measured-probe molecular run).
func BenchmarkTable4(b *testing.B) {
	t2, err := table2Cached()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4, err := experiments.Table4(benchOpts, t2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t4.Rows {
			if r.Name == "8MB 8-way" {
				b.ReportMetric(r.PowerW, "trad-8way-W")
				b.ReportMetric(r.MolWorstW, "mol-worst-W")
			}
		}
	}
}

// BenchmarkTable5 regenerates the power-deviation products.
func BenchmarkTable5(b *testing.B) {
	t2, err := table2Cached()
	if err != nil {
		b.Fatal(err)
	}
	t4, err := experiments.Table4(benchOpts, t2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(benchOpts, t2, t4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].MolPD, "mol-power-deviation")
		b.ReportMetric(rows[len(rows)-1].TradPD, "trad-power-deviation")
	}
}

// BenchmarkHeadline regenerates the paper's abstract claim (the power
// advantage over the equivalently performing traditional cache).
func BenchmarkHeadline(b *testing.B) {
	t2, err := table2Cached()
	if err != nil {
		b.Fatal(err)
	}
	t4, err := experiments.Table4(benchOpts, t2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := experiments.ComputeHeadline(t2, t4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.AdvantagePct, "power-advantage-%")
	}
}

// benchSweepOpts is a reduced reference sweep for the scheduler benches:
// a 12-point grid over one captured trace. Jobs is set per benchmark.
func benchSweepOpts(jobs int) experiments.SweepOptions {
	return experiments.SweepOptions{
		ProcessorRefs: 1_000_000,
		Seed:          2006,
		Sizes:         []uint64{1 * addr.MB, 2 * addr.MB},
		MoleculeSizes: []uint64{8 * addr.KB, 16 * addr.KB},
		Policies: []molecular.ReplacementKind{
			molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
		},
		Jobs: jobs,
	}
}

// BenchmarkSweepSerial runs the reference sweep with the worker pool in
// serial mode (-jobs 1): the byte-identical baseline.
func BenchmarkSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sweep(benchSweepOpts(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same sweep fanned across GOMAXPROCS
// workers. Compare ns/op against BenchmarkSweepSerial for the wall-clock
// speedup (the trace capture is serial in both, so the ratio understates
// the replay phase's scaling).
func BenchmarkSweepParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sweep(benchSweepOpts(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benches (DESIGN.md section 5).
// ---------------------------------------------------------------------

// ablationTrace captures one 12-benchmark L1-miss trace for the ablations.
var ablationTrace = sync.OnceValue(func() []trace.Ref {
	l2 := cache.MustNew(cache.Config{Size: 1 * addr.MB, Ways: 4, LineSize: 64})
	sim, err := molcache.NewSystem(l2, molcache.SystemConfig{CaptureL1Misses: true})
	if err != nil {
		panic(err)
	}
	for i, name := range workload.MixedNames {
		asid := uint16(i + 1)
		gen := workload.MustNew(name, uint64(asid)<<36, 2006+uint64(asid)*1000)
		if err := sim.AddCore(asid, gen); err != nil {
			panic(err)
		}
	}
	sim.Run(6_000_000)
	return sim.Captured()
})

// replayAblation replays the shared trace into one molecular config and
// reports the average deviation from the 25% goal.
func replayAblation(b *testing.B, mcfg molecular.Config, rcfg resize.Config) {
	refs := ablationTrace()
	goals := molcache.Goals{}
	rcfg.Goals = map[uint16]float64{}
	for i := range workload.MixedNames {
		goals[uint16(i+1)] = 0.25
		rcfg.Goals[uint16(i+1)] = 0.25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := molecular.MustNew(mcfg)
		ctrl := resize.MustNew(mc, rcfg)
		for _, r := range refs {
			mc.Access(r)
			ctrl.Tick()
		}
		b.ReportMetric(molcache.AverageDeviation(mc.Ledger(), goals), "deviation")
		b.ReportMetric(mc.AverageProbes(), "probes/access")
	}
	b.SetBytes(int64(len(refs)))
}

// sixMB returns the paper's 6MB mixed-workload molecular config.
func sixMB(policy molecular.ReplacementKind) molecular.Config {
	return molecular.Config{
		TotalSize: 6 * addr.MB, Clusters: 3, TilesPerCluster: 4,
		Policy: policy, Seed: 2006,
	}
}

// BenchmarkAblationPolicy compares the molecule-selection policies,
// including the future-work LRU-Direct scheme.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, policy := range []molecular.ReplacementKind{
		molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
	} {
		b.Run(string(policy), func(b *testing.B) {
			replayAblation(b, sixMB(policy), resize.Config{})
		})
	}
}

// BenchmarkAblationMoleculeSize compares 8/16/32KB molecules (the
// paper's stated building-block range).
func BenchmarkAblationMoleculeSize(b *testing.B) {
	for _, size := range []uint64{8 * addr.KB, 16 * addr.KB, 32 * addr.KB} {
		b.Run(addr.Bytes(size), func(b *testing.B) {
			cfg := sixMB(molecular.RandyReplacement)
			cfg.MoleculeSize = size
			replayAblation(b, cfg, resize.Config{})
		})
	}
}

// BenchmarkAblationResizeTrigger compares constant, adaptive-global and
// adaptive-per-app resize scheduling.
func BenchmarkAblationResizeTrigger(b *testing.B) {
	for _, trig := range []resize.TriggerKind{
		resize.Constant, resize.AdaptiveGlobal, resize.AdaptivePerApp,
	} {
		b.Run(string(trig), func(b *testing.B) {
			replayAblation(b, sixMB(molecular.RandyReplacement),
				resize.Config{Trigger: trig})
		})
	}
}

// BenchmarkAblationInitialAllocation compares the paper's "Ground Zero"
// choices: tiny (2 molecules), half tile (the paper's pick), full tile.
func BenchmarkAblationInitialAllocation(b *testing.B) {
	for _, init := range []struct {
		name string
		n    int
	}{{"2-molecules", 2}, {"half-tile", 32}, {"full-tile", 64}} {
		b.Run(init.name, func(b *testing.B) {
			cfg := sixMB(molecular.RandyReplacement)
			cfg.InitialMolecules = init.n
			replayAblation(b, cfg, resize.Config{})
		})
	}
}

// BenchmarkAblationLineFactor compares variable line sizes (k lines per
// miss) on the streaming-heavy media benchmarks, where spatial locality
// should reward larger fetch units.
func BenchmarkAblationLineFactor(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "64B", 2: "128B", 4: "256B"}[k], func(b *testing.B) {
			cfg := sixMB(molecular.RandyReplacement)
			cfg.LineFactor = k
			replayAblation(b, cfg, resize.Config{})
		})
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the hot paths.
// ---------------------------------------------------------------------

// BenchmarkMolecularAccess measures one molecular-cache lookup+fill.
func BenchmarkMolecularAccess(b *testing.B) {
	mc := molecular.MustNew(molecular.Config{TotalSize: 2 * addr.MB, Seed: 1})
	gen := workload.MustNew("gcc", 1<<36, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := gen.Next()
		k := trace.Read
		if a.Write {
			k = trace.Write
		}
		mc.Access(trace.Ref{Addr: a.Addr, ASID: 1, Kind: k})
	}
}

// BenchmarkMolecularAccessTelemetry measures the telemetry tax on the
// molecular access path: "disabled" is the default nil-attachment state
// (must stay within a few percent of BenchmarkMolecularAccess — the
// path pays two pointer checks), "metrics" adds the counter increments,
// and "metrics+trace" adds ring-buffered event emission.
func BenchmarkMolecularAccessTelemetry(b *testing.B) {
	run := func(b *testing.B, attach func(*molecular.Cache)) {
		mc := molecular.MustNew(molecular.Config{TotalSize: 2 * addr.MB, Seed: 1})
		if attach != nil {
			attach(mc)
		}
		gen := workload.MustNew("gcc", 1<<36, 7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := gen.Next()
			k := trace.Read
			if a.Write {
				k = trace.Write
			}
			mc.Access(trace.Ref{Addr: a.Addr, ASID: 1, Kind: k})
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("metrics", func(b *testing.B) {
		run(b, func(mc *molecular.Cache) {
			mc.AttachTelemetry(nil, molcache.NewRegistry())
		})
	})
	b.Run("metrics+trace", func(b *testing.B) {
		run(b, func(mc *molecular.Cache) {
			mc.AttachTelemetry(molcache.NewTracer(0), molcache.NewRegistry())
		})
	})
}

// BenchmarkTraditionalAccess measures one set-associative lookup+fill.
func BenchmarkTraditionalAccess(b *testing.B) {
	c := cache.MustNew(cache.Config{Size: 2 * addr.MB, Ways: 8, LineSize: 64})
	gen := workload.MustNew("gcc", 1<<36, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := gen.Next()
		k := trace.Read
		if a.Write {
			k = trace.Write
		}
		c.Access(trace.Ref{Addr: a.Addr, ASID: 1, Kind: k})
	}
}

// BenchmarkWorkloadGeneration measures the reference generators.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, name := range []string{"art", "mcf", "parser", "CRC"} {
		b.Run(name, func(b *testing.B) {
			gen := workload.MustNew(name, 0, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gen.Next()
			}
		})
	}
}

// BenchmarkCMPStep measures the full CMP substrate pipeline (generator ->
// L1 -> coherence -> L2) per reference.
func BenchmarkCMPStep(b *testing.B) {
	l2 := cache.MustNew(cache.Config{Size: 1 * addr.MB, Ways: 4, LineSize: 64})
	sys, err := molcache.NewSystem(l2, molcache.SystemConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for i := uint16(1); i <= 4; i++ {
		gen := workload.MustNew(workload.SPECNames[i-1], uint64(i)<<36, uint64(i))
		if err := sys.AddCore(i, gen); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkPowerModel measures one full organization search.
func BenchmarkPowerModel(b *testing.B) {
	g := molcache.PowerGeometry{SizeBytes: 8 * addr.MB, Assoc: 4, LineBytes: 64, Ports: 4}
	for i := 0; i < b.N; i++ {
		if _, err := molcache.EstimatePower(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelatedWork regenerates the related-work comparison (shared
// LRU vs ModifiedLRU vs column caching vs home banks vs molecular).
func BenchmarkRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RelatedWork(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "2MB Molecular (Random)" {
				b.ReportMetric(r.Deviation, "molecular-deviation")
			}
			if r.Name == "2MB 8-way ColumnCache" {
				b.ReportMetric(r.Deviation, "columns-deviation")
			}
		}
	}
}
