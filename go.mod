module molcache

go 1.22
