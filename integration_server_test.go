// Served-traffic differential oracle for cmd/molcached's serving layer
// (internal/server): a live multi-tenant TCP server journals every
// admitted access to a MOLC1-framed log, and replaying that journal
// through a fresh offline Simulator must reproduce the server's exact
// end state — per-access Results (asserted inside ReplayJournal),
// ledgers, probe histograms, telemetry registries, ordered event
// streams, resize decision logs and structural invariant captures — at
// live and replay shard counts {1, 4}, across fault campaigns and a
// checkpoint/warm-restart cycle. Any divergence means the network
// layer, batching, journaling or restore path added semantic drift the
// cache model did not see.
package molcache_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"molcache/internal/addr"
	"molcache/internal/faults"
	"molcache/internal/invariant"
	"molcache/internal/molecular"
	"molcache/internal/obs"
	"molcache/internal/server"
	"molcache/internal/server/servertest"
)

// servedOracleConfig is a 4-cluster geometry (8 tiles, 128 molecules)
// so live and replay shard counts up to 4 each own whole clusters.
func servedOracleConfig() molecular.Config {
	return molecular.Config{
		TotalSize:        1 * addr.MB,
		MoleculeSize:     8 * addr.KB,
		Clusters:         4,
		TilesPerCluster:  2,
		Policy:           molecular.RandyReplacement,
		LineFactor:       2,
		InitialMolecules: 8,
		Seed:             2006,
	}
}

// compareServedState asserts the replayed simulator landed on the live
// server's exact end state. withEvents is false only across a warm
// restart, where the live tracer ring was recreated at boot and so only
// holds post-restart events (everything else survives the checkpoint).
func compareServedState(t *testing.T, label string, srv *server.Server, rep *server.Replay, withEvents bool) {
	t.Helper()
	live, offline := srv.Sim(), rep.Sim
	if !reflect.DeepEqual(*live.Cache.Ledger(), *offline.Cache.Ledger()) {
		t.Errorf("%s: ledgers diverged:\nlive   %+v\nreplay %+v", label, *live.Cache.Ledger(), *offline.Cache.Ledger())
	}
	for asid := uint16(1); asid <= uint16(rep.Tenants); asid++ {
		if l, o := live.Cache.Ledger().App(asid), offline.Cache.Ledger().App(asid); l != o {
			t.Errorf("%s: asid %d ledger diverged: live %+v, replay %+v", label, asid, l, o)
		}
	}
	if !reflect.DeepEqual(live.Cache.ProbeHistogram(), offline.Cache.ProbeHistogram()) {
		t.Errorf("%s: probe histograms diverged", label)
	}
	if l, o := live.Degradation(), offline.Degradation(); l != o {
		t.Errorf("%s: degradation stats diverged: live %+v, replay %+v", label, l, o)
	}
	if l, o := live.FaultStats(), offline.FaultStats(); l != o {
		t.Errorf("%s: fault stats diverged: live %+v, replay %+v", label, l, o)
	}
	ls, os := srv.Registry().Snapshot(), rep.Registry.Snapshot()
	if !reflect.DeepEqual(ls.Counters, os.Counters) {
		t.Errorf("%s: telemetry counters diverged:\nlive   %v\nreplay %v", label, ls.Counters, os.Counters)
	}
	if !reflect.DeepEqual(ls.Gauges, os.Gauges) {
		t.Errorf("%s: telemetry gauges diverged:\nlive   %v\nreplay %v", label, ls.Gauges, os.Gauges)
	}
	if !reflect.DeepEqual(ls.Histograms, os.Histograms) {
		t.Errorf("%s: telemetry histograms diverged", label)
	}
	if withEvents {
		if l, o := srv.Tracer().Emitted(), rep.Tracer.Emitted(); l != o {
			t.Errorf("%s: event counts diverged: live %d, replay %d", label, l, o)
		}
		if !reflect.DeepEqual(srv.Tracer().Events(), rep.Tracer.Events()) {
			lev, oev := srv.Tracer().Events(), rep.Tracer.Events()
			n := len(lev)
			if len(oev) < n {
				n = len(oev)
			}
			for i := 0; i < n; i++ {
				if lev[i] != oev[i] {
					t.Errorf("%s: event %d diverged: live %+v, replay %+v", label, i, lev[i], oev[i])
					break
				}
			}
			t.Errorf("%s: event streams diverged (%d live, %d replay)", label, len(lev), len(oev))
		}
	}
	if !reflect.DeepEqual(live.Controller.Decisions(), offline.Controller.Decisions()) {
		t.Errorf("%s: resize decision logs diverged:\nlive   %+v\nreplay %+v",
			label, live.Controller.Decisions(), offline.Controller.Decisions())
	}
	lcap, ocap := invariant.CaptureCache(live.Cache), invariant.CaptureCache(offline.Cache)
	if !reflect.DeepEqual(lcap, ocap) {
		t.Errorf("%s: invariant captures diverged", label)
	}
	for side, cap := range map[string]invariant.Snapshot{"live": lcap, "replay": ocap} {
		if vs := invariant.Check(cap); len(vs) != 0 {
			t.Errorf("%s: %s capture has violations: %v", label, side, vs)
		}
	}
}

// TestServedTrafficOracle is the headline lock: three tenants driven
// concurrently over real TCP connections, then the journal replayed
// offline at shard counts {1, 4} against live servers also running at
// shard counts {1, 4}. Per-access Result identity is asserted inside
// ReplayJournal; the end-state comparison covers everything else.
func TestServedTrafficOracle(t *testing.T) {
	for _, liveShards := range []int{1, 4} {
		liveShards := liveShards
		t.Run(fmt.Sprintf("live-shards=%d", liveShards), func(t *testing.T) {
			t.Parallel()
			f := servertest.Boot(t, servertest.Options{
				Molecular: servedOracleConfig(),
				Shards:    liveShards,
			})
			tenants := []struct {
				name string
				goal float64
				lf   int
				seed uint64
				ops  int
				keys int
			}{
				{"web", 0.05, 2, 11, 1500, 64},
				{"api", 0.2, 0, 22, 1500, 512},
				{"scan", 0.4, 0, 33, 1500, 4096},
			}
			var wg sync.WaitGroup
			errs := make([]error, len(tenants))
			for i, tn := range tenants {
				c := f.Client()
				if _, err := c.Tenant(tn.name, tn.goal, tn.lf); err != nil {
					t.Fatalf("TENANT %s: %v", tn.name, err)
				}
				i, tn := i, tn
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, errs[i] = c.Drive(tn.name, tn.seed, tn.ops, tn.keys)
				}()
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("drive %s: %v", tenants[i].name, err)
				}
			}
			if err := f.Server.Shutdown(); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}

			for _, replayShards := range []int{1, 4} {
				label := fmt.Sprintf("live=%d/replay=%d", liveShards, replayShards)
				rep, err := server.ReplayJournalFile(f.JournalPath, server.ReplayOptions{Shards: replayShards})
				if err != nil {
					t.Fatalf("%s: replay: %v", label, err)
				}
				if rep.Tenants != len(tenants) || rep.Accesses == 0 {
					t.Fatalf("%s: replay saw %d tenants / %d accesses", label, rep.Tenants, rep.Accesses)
				}
				compareServedState(t, label, f.Server, rep, true)
			}
		})
	}
}

// TestServedTenantIsolation: a scan-storm tenant hammering a huge key
// space must not drag a small, SLO-tight tenant past its goal — the
// controller keeps the tight tenant's region sized for its working set
// (the paper's QoS claim, observed end to end through the daemon).
func TestServedTenantIsolation(t *testing.T) {
	cases := []struct {
		name     string
		lf       int
		scanKeys int
		tightMax float64 // ceiling for the tight tenant's overall miss rate
	}{
		{"lf2-storm16k", 2, 16384, 0.10},
		{"lf1-storm8k", 0, 8192, 0.10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			f := servertest.Boot(t, servertest.Options{
				Molecular: servedOracleConfig(),
				Obs:       true,
			})
			c := f.Client()
			tightASID, err := c.Tenant("tight", 0.05, tc.lf)
			if err != nil {
				t.Fatal(err)
			}
			scanASID, err := c.Tenant("scan", 0.4, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the tight tenant, then interleave its steady traffic
			// with storm rounds (deterministic: one client, one stream).
			if _, err := c.Drive("tight", 11, 800, 48); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 8; round++ {
				if _, err := c.Drive("tight", uint64(100+round), 150, 48); err != nil {
					t.Fatal(err)
				}
				if _, err := c.Drive("scan", uint64(200+round), 600, tc.scanKeys); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Server.Shutdown(); err != nil {
				t.Fatal(err)
			}

			led := f.Server.Sim().Cache.Ledger()
			tight, scan := led.App(tightASID), led.App(scanASID)
			if tight.MissRate() >= scan.MissRate() {
				t.Errorf("no isolation: tight miss rate %.4f >= scan %.4f",
					tight.MissRate(), scan.MissRate())
			}
			if tight.MissRate() > tc.tightMax {
				t.Errorf("tight tenant dragged past its SLO: miss rate %.4f > %.4f",
					tight.MissRate(), tc.tightMax)
			}
			// The published tenant view agrees with the ledger.
			var page struct {
				Tenants []obs.TenantInfo `json:"tenants"`
			}
			if err := servertest.GetJSON(f.Server.ObsURL()+"/tenants", &page); err != nil {
				t.Fatalf("GET /tenants: %v", err)
			}
			if len(page.Tenants) != 2 {
				t.Fatalf("got %d tenants in /tenants", len(page.Tenants))
			}
			ti := page.Tenants[0]
			if ti.Name != "tight" {
				t.Fatalf("tenant[0] = %q, want tight", ti.Name)
			}
			if got := ti.MissRate; got != tight.MissRate() {
				t.Errorf("/tenants miss rate %.6f != ledger %.6f", got, tight.MissRate())
			}
			// The replay oracle holds for the storm traffic too.
			rep, err := server.ReplayJournalFile(f.JournalPath, server.ReplayOptions{})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			compareServedState(t, tc.name, f.Server, rep, true)
		})
	}
}

// TestServedFaultDegradation: a fault campaign (molecule failures and
// line corruptions keyed to the access clock) must not break serving —
// every request still gets a correct answer — and the journal replays
// to the identical degraded end state, because the replayed access
// clock re-delivers the same faults at the same points.
func TestServedFaultDegradation(t *testing.T) {
	campaign := faults.Campaign{
		Seed:                   42,
		RandomMoleculeFailures: &faults.RandomSpec{Count: 4, Start: 1000, End: 5000},
		RandomLineCorruptions:  &faults.RandomSpec{Count: 24, Start: 500, End: 6000},
	}
	f := servertest.Boot(t, servertest.Options{
		Molecular: servedOracleConfig(),
		Faults:    campaign,
	})
	c := f.Client()
	for _, name := range []string{"web", "batch"} {
		if _, err := c.Tenant(name, 0.2, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Values written before the faults strike must still read back
	// correctly afterwards (the store is authoritative; the cache model
	// only scores hits).
	if _, err := c.Set("web", "canary", []byte("still-here")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drive("web", 7, 3500, 256); err != nil {
		t.Fatalf("serving broke under faults: %v", err)
	}
	if _, err := c.Drive("batch", 8, 3500, 1024); err != nil {
		t.Fatalf("serving broke under faults: %v", err)
	}
	v, _, found, err := c.Get("web", "canary")
	if err != nil || !found || !bytes.Equal(v, []byte("still-here")) {
		t.Fatalf("canary after faults: value=%q found=%v err=%v", v, found, err)
	}
	if err := f.Server.Shutdown(); err != nil {
		t.Fatal(err)
	}

	fs := f.Server.Sim().FaultStats()
	if fs.MoleculeFailures == 0 || fs.LineCorruptions == 0 {
		t.Fatalf("campaign not delivered: %+v", fs)
	}
	for _, shards := range []int{1, 4} {
		rep, err := server.ReplayJournalFile(f.JournalPath, server.ReplayOptions{Shards: shards})
		if err != nil {
			t.Fatalf("replay shards=%d: %v", shards, err)
		}
		compareServedState(t, fmt.Sprintf("faults/replay=%d", shards), f.Server, rep, true)
	}
}

// TestWarmRestartContinuity: SIGTERM-checkpoint, reboot, keep serving.
// The restarted server must remember its tenants and stored values, the
// journal must stay gap-free across the generations, and a replay of
// the full journal — genesis through both generations — must land on
// the restarted server's exact end state.
func TestWarmRestartContinuity(t *testing.T) {
	f := servertest.Boot(t, servertest.Options{Molecular: servedOracleConfig()})
	c := f.Client()
	if _, err := c.Tenant("web", 0.1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set("web", "durable", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drive("web", 5, 1200, 128); err != nil {
		t.Fatal(err)
	}

	f.Restart()

	c2 := f.Client()
	// The tenant and its values survived without re-registration.
	v, _, found, err := c2.Get("web", "durable")
	if err != nil || !found || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("durable key after restart: value=%q found=%v err=%v", v, found, err)
	}
	// New tenants land on fresh ASIDs (the allocator state survived).
	asid, err := c2.Tenant("late", 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if asid != 2 {
		t.Fatalf("post-restart tenant ASID = %d, want 2", asid)
	}
	if _, err := c2.Drive("web", 6, 800, 128); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Drive("late", 7, 800, 512); err != nil {
		t.Fatal(err)
	}
	if err := f.Server.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Full-journal replay (both generations) against the final state.
	// Events are excluded: the live ring restarted empty at reboot.
	rep, err := server.ReplayJournalFile(f.JournalPath, server.ReplayOptions{})
	if err != nil {
		t.Fatalf("replay across restart: %v", err)
	}
	if rep.Tenants != 2 {
		t.Fatalf("replay saw %d tenants, want 2", rep.Tenants)
	}
	compareServedState(t, "warm-restart", f.Server, rep, false)
}
