// Sharded-engine benchmarks: the epoch-parallel AccessBatch against the
// serial fast path, over shard count × batch size, on a warmed
// multi-region hit stream spread across every cluster (the workload
// shape sharding exists for: independent per-application regions homed
// in different clusters). TestWriteShardBench re-runs the grid through
// testing.Benchmark and writes the results as a telemetry snapshot
// (BENCH_shard.json via `make bench`), giving future PRs a
// machine-readable scaling trajectory.
package molcache_test

import (
	"fmt"
	"os"
	"testing"

	"molcache/internal/addr"
	"molcache/internal/molecular"
	"molcache/internal/shard"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
)

// shardBenchRegions is the number of per-application regions, one homed
// in each of the 8 clusters.
const shardBenchRegions = 8

// shardBenchCache builds an 8-cluster cache with one warmed region per
// cluster and an interleaved all-hit reference stream that rotates
// through the regions — so at any shard count every shard receives an
// equal slice of each batch.
func shardBenchCache(tb testing.TB) (*molecular.Cache, []trace.Ref) {
	tb.Helper()
	c, err := molecular.New(molecular.Config{
		TotalSize:       1 * addr.MB,
		MoleculeSize:    8 * addr.KB,
		TilesPerCluster: 2,
		Clusters:        8,
		Policy:          molecular.RandyReplacement,
		Seed:            2006,
	})
	if err != nil {
		tb.Fatal(err)
	}
	linesPerMol := int(c.Config().MoleculeSize / c.Config().LineSize)
	perRegion := make([][]trace.Ref, shardBenchRegions)
	for i := 0; i < shardBenchRegions; i++ {
		asid := uint16(i + 1)
		if _, err := c.CreateRegion(asid, molecular.RegionOptions{
			HomeCluster: i, HomeTile: -1, InitialMolecules: 12,
		}); err != nil {
			tb.Fatal(err)
		}
		// One line per direct-mapped slot: a working set Randy keeps
		// resident forever, so the stream hits after one warm pass.
		refs := make([]trace.Ref, linesPerMol)
		for b := 0; b < linesPerMol; b++ {
			refs[b] = trace.Ref{
				Addr: uint64(asid)<<32 | uint64(b)*c.Config().LineSize,
				ASID: asid, Kind: trace.Read,
			}
		}
		perRegion[i] = refs
	}
	// Interleave region streams round-robin and warm with two passes.
	var stream []trace.Ref
	for b := 0; b < linesPerMol; b++ {
		for i := 0; i < shardBenchRegions; i++ {
			stream = append(stream, perRegion[i][b])
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, r := range stream {
			c.Access(r)
		}
	}
	return c, stream
}

// benchReplayBatches drives b.N accesses through run in windows of
// batch refs, cycling the warmed stream.
func benchReplayBatches(b *testing.B, refs []trace.Ref, batch int, run func([]trace.Ref)) {
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := batch
		if rem := b.N - done; n > rem {
			n = rem
		}
		base := done % len(refs)
		if base+n > len(refs) {
			n = len(refs) - base
		}
		run(refs[base : base+n])
		done += n
	}
}

// BenchmarkAccessBatch measures the serial AccessBatch fold — the
// baseline the sharded engine must beat, and the cost of batching
// itself relative to BenchmarkAccessHot's single-access loop.
func BenchmarkAccessBatch(b *testing.B) {
	for _, batch := range []int{1024, 8192} {
		batch := batch
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			c, refs := shardBenchCache(b)
			b.ReportAllocs()
			benchReplayBatches(b, refs, batch, func(w []trace.Ref) { c.AccessBatch(w) })
		})
	}
}

// BenchmarkShardedRun measures the epoch-parallel engine over shard
// count × batch size. ns/op at shards=1 is the epoch machinery's
// overhead floor; the ratio serial/shardsN is the scaling curve.
func BenchmarkShardedRun(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1024, 8192} {
			shards, batch := shards, batch
			b.Run(fmt.Sprintf("shards%d/batch%d", shards, batch), func(b *testing.B) {
				c, refs := shardBenchCache(b)
				eng := shard.New(c, nil, shards)
				b.ReportAllocs()
				benchReplayBatches(b, refs, batch, func(w []trace.Ref) { eng.AccessBatch(w) })
			})
		}
	}
}

// TestWriteShardBench runs serial AccessBatch plus the sharded grid
// through testing.Benchmark and writes ns/op and the serial-over-shard
// speedups as a telemetry snapshot to $BENCH_SHARD_OUT. Skipped unless
// BENCH_SHARD_OUT is set: `make bench` (and the CI bench job) set it to
// BENCH_shard.json.
func TestWriteShardBench(t *testing.T) {
	out := os.Getenv("BENCH_SHARD_OUT")
	if out == "" {
		t.Skip("BENCH_SHARD_OUT not set; set it to write the shard benchmark snapshot")
	}
	reg := telemetry.NewRegistry()
	for _, batch := range []int{1024, 8192} {
		batch := batch
		serial := testing.Benchmark(func(b *testing.B) {
			c, refs := shardBenchCache(b)
			benchReplayBatches(b, refs, batch, func(w []trace.Ref) { c.AccessBatch(w) })
		})
		serialNs := float64(serial.T.Nanoseconds()) / float64(serial.N)
		label := fmt.Sprintf("{config=%q,path=%q}", fmt.Sprintf("batch%d", batch), "serial")
		reg.Gauge("molcache_shard_bench_ns_per_access" + label).Set(serialNs)
		t.Logf("batch%d serial: %.1f ns/access", batch, serialNs)
		for _, shards := range []int{2, 4, 8} {
			shards := shards
			res := testing.Benchmark(func(b *testing.B) {
				c, refs := shardBenchCache(b)
				eng := shard.New(c, nil, shards)
				benchReplayBatches(b, refs, batch, func(w []trace.Ref) { eng.AccessBatch(w) })
			})
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			cfg := fmt.Sprintf("batch%d", batch)
			path := fmt.Sprintf("shards%d", shards)
			label := fmt.Sprintf("{config=%q,path=%q}", cfg, path)
			reg.Gauge("molcache_shard_bench_ns_per_access" + label).Set(ns)
			speedup := serialNs / ns
			reg.Gauge("molcache_shard_bench_speedup" + fmt.Sprintf("{config=%q,path=%q}", cfg, path)).Set(speedup)
			t.Logf("batch%d shards%d: %.1f ns/access, %.2fx vs serial", batch, shards, ns, speedup)
		}
	}
	data, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
