GO ?= go

.PHONY: all build test race vet bench bench-micro clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

# Just the hot-path micro benches (fast; includes the telemetry
# overhead comparison).
bench-micro:
	$(GO) test -bench 'Access|CMPStep|WorkloadGeneration' -benchmem -run=NONE .

clean:
	$(GO) clean ./...
