GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race race-shard race-serve vet lint bench bench-micro fuzz faults obs-smoke soak clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/molvet): determinism, telemetry
# and concurrency discipline. gofmt -l lists unformatted files; the
# grep inverts that into a failure.
lint:
	$(GO) run ./cmd/molvet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# BENCH_OUT receives the access-path benchmark snapshot (ns/op,
# allocs/op and fast-over-reference speedup per configuration);
# BENCH_OBS_OUT the span-tracing overhead snapshot (disabled, unsampled,
# sampled and always-on variants); BENCH_SHARD_OUT the sharded-engine
# scaling snapshot (serial vs shards {2,4,8} × batch sizes). All are
# telemetry JSON — the machine-readable perf trajectories CI archives.
BENCH_OUT ?= BENCH_access.json
BENCH_OBS_OUT ?= BENCH_obs.json
BENCH_SHARD_OUT ?= BENCH_shard.json

bench:
	$(GO) test -bench=. -benchmem -run=NONE .
	BENCH_OUT=$(BENCH_OUT) $(GO) test -run '^TestWriteAccessBench$$' -count=1 .
	BENCH_OBS_OUT=$(BENCH_OBS_OUT) $(GO) test -run '^TestWriteObsBench$$' -count=1 .
	BENCH_SHARD_OUT=$(BENCH_SHARD_OUT) $(GO) test -run '^TestWriteShardBench$$' -count=1 .

# Stress the sharded engine's determinism under the race detector:
# repeated runs shake out goroutine interleavings the single pass might
# miss (the CI race-stress job).
race-shard:
	$(GO) test -race -count=3 -run 'Sharded|ShardLane|AccessBatch|AssignClusters|MergedEventOrder' . ./internal/shard

# Stress the serving layer under the race detector: N concurrent
# clients against a live molcached instance, then assert the journal is
# gap-free and the /metrics totals match (the CI race-serve job).
race-serve:
	$(GO) test -race -count=1 -run 'TestRaceServe' ./internal/server

# Just the hot-path micro benches (fast; includes the telemetry
# overhead comparison).
bench-micro:
	$(GO) test -bench 'Access|CMPStep|WorkloadGeneration' -benchmem -run=NONE .

# Fuzz the trace and checkpoint decoders, the molvet directive parser
# and the molcached wire-protocol decoder (FUZZTIME per target).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzCompressedReader -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzParseTextLine -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz FuzzParseDirective -fuzztime $(FUZZTIME) ./internal/analysis
	$(GO) test -run '^$$' -fuzz FuzzServerDecode -fuzztime $(FUZZTIME) ./internal/server

# Start molsim with -serve, curl every introspection endpoint and assert
# well-formed, non-empty output (the CI smoke for the live observability
# plane).
obs-smoke:
	./scripts/obs_smoke.sh

# Chaos soak: randomized kill/restore campaigns over the MOLC1
# checkpoint path (cmd/molchaos). SOAKTIME bounds the wall clock; on any
# divergence, invariant violation or unclean corruption rejection a
# minimized repro bundle lands under soak-artifacts/ and the run exits
# nonzero.
SOAKTIME ?= 45s
soak:
	$(GO) run ./cmd/molchaos -duration $(SOAKTIME) -out soak-artifacts

# Drive the bundled fault campaign through molsim with invariant audits;
# exits nonzero on any violation or undelivered failure.
faults:
	$(GO) run ./cmd/molsim -cache molecular:1MB:2x4:Randy -mix art,mcf,parser \
		-refs 2000000 -faults cmd/molsim/testdata/campaign.json -check-invariants 2000

clean:
	$(GO) clean ./...
