// Powerbudget: explore the paper's power argument with the CACTI-style
// model — why high associativity is expensive, why a small direct-mapped
// molecule is cheap, and how selective enablement turns partition size
// into dynamic power.
package main

import (
	"fmt"
	"log"

	"molcache"
)

func main() {
	// 1. The cost of associativity at 8MB (the paper's Table 4 sweep):
	// energy rises with ways while the 8-way's frequency collapses.
	fmt.Println("8MB traditional cache, 4 ports, 70nm:")
	var freq4way float64
	for _, ways := range []int{1, 2, 4, 8} {
		e, err := molcache.EstimatePower(molcache.PowerGeometry{
			SizeBytes: 8 << 20, Assoc: ways, LineBytes: 64, Ports: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		if ways == 4 {
			freq4way = e.FrequencyMHz()
		}
		fmt.Printf("  %-10s %6.1f nJ/access  %5.0f MHz  %5.2f W\n",
			e.Geometry.Name(), e.AccessEnergy, e.FrequencyMHz(),
			e.PowerWatts(e.FrequencyMHz()))
	}

	// 2. The molecule: two orders of magnitude cheaper per probe.
	me, err := molcache.EstimateMolecularPower(molcache.MolecularPowerGeometry{
		TotalBytes:      8 << 20,
		MoleculeBytes:   8 << 10,
		LineBytes:       64,
		TileMolecules:   64,
		PortsPerCluster: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8KB molecule: %.3f nJ/probe, %.2f ns cycle (incl. ASID stage)\n",
		me.Molecule.AccessEnergy, me.CycleTime())

	// 3. Selective enablement: dynamic power scales with the molecules a
	// partition actually enables, compared at the 4-way's frequency.
	fmt.Printf("\nmolecular power at the 4-way's %.0f MHz, by molecules probed:\n", freq4way)
	for _, probes := range []int{4, 8, 16, 32, 64} {
		w := me.AccessEnergy(probes) * freq4way / 1000
		fmt.Printf("  %2d molecules -> %5.2f W\n", probes, w)
	}
	w4, err := molcache.EstimatePower(molcache.PowerGeometry{
		SizeBytes: 8 << 20, Assoc: 4, LineBytes: 64, Ports: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraditional 8MB 4-way at the same frequency: %.2f W\n",
		w4.PowerWatts(freq4way))
	fmt.Println("A typical half-tile partition (32 molecules) undercuts it — the")
	fmt.Println("mechanism behind the paper's 29% power-advantage headline.")
}
