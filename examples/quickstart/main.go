// Quickstart: build a molecular cache with a resize controller, run two
// applications through it, and inspect per-application isolation, miss
// rates and partition layouts.
package main

import (
	"fmt"
	"log"

	"molcache"
)

func main() {
	// A 2MB molecular cache: one tile cluster of four tiles, 8KB
	// direct-mapped molecules, Randy (row-hashed) replacement, and
	// Algorithm 1 resizing toward a 10% miss-rate goal per application.
	sim, err := molcache.NewSimulator(
		molcache.MolecularConfig{
			TotalSize: 2 << 20,
			Policy:    molcache.Randy,
			Seed:      1,
		},
		molcache.ResizeConfig{DefaultGoal: 0.10},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Application 1 loops over a 256KB working set; application 2
	// sweeps a large array with no reuse. Their address spaces are
	// disjoint (each app gets its own base).
	const lines1 = 256 << 10 / 64
	for i := 0; i < 2_000_000; i++ {
		a1 := uint64(i%lines1) * 64
		sim.Access(molcache.Ref{Addr: a1, ASID: 1, Kind: molcache.Read})
		a2 := uint64(1)<<36 + uint64(i)*64
		sim.Access(molcache.Ref{Addr: a2, ASID: 2, Kind: molcache.Write})
	}

	ledger := sim.Cache.Ledger()
	fmt.Printf("%s\n\n", sim.Cache.Name())
	for _, asid := range []uint16{1, 2} {
		hm := ledger.App(asid)
		r := sim.Cache.Region(asid)
		fmt.Printf("app %d: miss rate %.4f over %d accesses, partition %d molecules, rows %v\n",
			asid, hm.MissRate(), hm.Accesses(), r.MoleculeCount(), r.Rows())
	}

	// The looping app is unharmed by its streaming neighbour — the
	// ASID-gated partitions isolate them (the paper's Table 1 problem,
	// solved). The streaming app's partition is kept small because more
	// molecules would not help it (Algorithm 1's payoff audit).
	fmt.Printf("\naverage deviation from the 10%% goal: %.4f\n",
		molcache.AverageDeviation(ledger, molcache.UniformGoals(0.10, 1, 2)))
	fmt.Printf("molecules probed per access (energy proxy): %.1f of %d\n",
		sim.Cache.AverageProbes(), sim.Cache.TotalMolecules())
}
