// Partitioning: reproduce the paper's motivating observation (Table 1) —
// on a shared cache an application's miss rate depends on who else is
// running — and show what the molecular cache's ASID-gated regions do
// about it, using the full CMP substrate (cores with private L1s) and
// the calibrated SPEC workload models.
package main

import (
	"fmt"
	"log"

	"molcache"
)

const refs = 40_000_000

var mix = []string{"art", "mcf", "ammp", "parser"}

func main() {
	fmt.Println("Part 1 — the problem (paper Table 1): on a shared 2MB 4-way L2,")
	fmt.Println("a benchmark's miss rate depends on its co-runners.")
	fmt.Println()
	alone := map[string]float64{}
	for i, name := range mix {
		l2 := newShared()
		sys := newSystem(l2, []string{name})
		sys.Run(refs / 4)
		alone[name] = l2.Ledger().App(1).MissRate()
		_ = i
	}
	sharedL2 := newShared()
	sharedSys := newSystem(sharedL2, mix)
	sharedSys.Run(refs)

	// The replay trace comes from the paper's reference configuration
	// (a 1MB 4-way shared L2), as in the SESC-to-Dinero methodology.
	refL2, err := molcache.NewTraditional(molcache.TraditionalConfig{
		Size: 1 << 20, Ways: 4, LineSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	refSys := newSystem(refL2, mix)
	refSys.Run(refs)
	captured := refSys.Captured()
	fmt.Printf("%-8s  %-12s  %s\n", "app", "alone", "with all four")
	for i, name := range mix {
		fmt.Printf("%-8s  %-12.3f  %.3f\n",
			name, alone[name], sharedL2.Ledger().App(uint16(i+1)).MissRate())
	}

	fmt.Println()
	fmt.Println("Part 2 — the fix: the captured L1-miss stream replayed (the")
	fmt.Println("paper's trace methodology) into a fresh shared 2MB 8-way cache")
	fmt.Println("and into a 2MB molecular cache with per-application regions")
	fmt.Println("resized toward a 10% goal (art, ammp, parser managed; mcf can")
	fmt.Println("never meet it and is left unmanaged).")
	fmt.Println()
	replayShared, err := molcache.NewTraditional(molcache.TraditionalConfig{
		Size: 2 << 20, Ways: 8, LineSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range captured {
		replayShared.Access(r)
	}
	sim, err := molcache.NewSimulator(
		molcache.MolecularConfig{TotalSize: 2 << 20, Policy: molcache.Random, Seed: 7},
		molcache.ResizeConfig{Goals: map[uint16]float64{1: 0.10, 3: 0.10, 4: 0.10}},
	)
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(captured)

	goals := molcache.UniformGoals(0.10, 1, 3, 4)
	fmt.Printf("%-8s  %-12s  %-12s  %s\n", "app", "shared", "molecular", "partition")
	for i, name := range mix {
		asid := uint16(i + 1)
		fmt.Printf("%-8s  %-12.3f  %-12.3f  %d molecules\n",
			name,
			replayShared.Ledger().App(asid).MissRate(),
			sim.Cache.Ledger().App(asid).MissRate(),
			sim.Cache.Region(asid).MoleculeCount())
	}
	fmt.Println()
	fmt.Printf("avg deviation from the 10%% goal: shared %.3f, molecular %.3f\n",
		molcache.AverageDeviation(replayShared.Ledger(), goals),
		molcache.AverageDeviation(sim.Cache.Ledger(), goals))
	fmt.Printf("molecules probed per access (energy proxy): %.1f of %d\n",
		sim.Cache.AverageProbes(), sim.Cache.TotalMolecules())
}

// newShared builds the shared baseline L2.
func newShared() *molcache.TraditionalCache {
	l2, err := molcache.NewTraditional(molcache.TraditionalConfig{
		Size: 2 << 20, Ways: 4, LineSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	return l2
}

// newSystem builds the CMP with one core per benchmark (ASIDs 1..n).
func newSystem(l2 molcache.Cache, names []string) *molcache.System {
	sys, err := molcache.NewSystem(l2, molcache.SystemConfig{CaptureL1Misses: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range names {
		asid := uint16(i + 1)
		gen, err := molcache.NewWorkload(name, uint64(asid)<<36, 2006+uint64(asid)*1000)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.AddCore(asid, gen); err != nil {
			log.Fatal(err)
		}
	}
	return sys
}
