// Resizing: watch Algorithm 1 track a program through phase changes.
// The workload alternates between a small and a large working set; the
// controller grows the partition when the miss-rate goal is blown and
// taxes it back once the pressure is gone.
package main

import (
	"fmt"
	"log"

	"molcache"
)

func main() {
	sim, err := molcache.NewSimulator(
		molcache.MolecularConfig{TotalSize: 2 << 20, Policy: molcache.Randy, Seed: 3},
		molcache.ResizeConfig{
			Period:      10_000,
			Trigger:     molcache.AdaptiveGlobalTrigger,
			DefaultGoal: 0.10,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	// A competing application keeps the free pool under pressure so the
	// controller has a reason to reclaim idle capacity.
	if _, err := sim.Cache.CreateRegion(2, molcache.RegionOptions{
		HomeCluster: 0, HomeTile: 1, InitialMolecules: 70,
	}); err != nil {
		log.Fatal(err)
	}

	// Program phases, line-granular accesses (an L1-miss stream). Both
	// applications loop; their working-set sizes change per phase.
	phase := func(span1, span2 uint64, n int, pos *uint64) {
		for i := 0; i < n; i++ {
			sim.Access(molcache.Ref{Addr: *pos % span1, ASID: 1, Kind: molcache.Read})
			sim.Access(molcache.Ref{Addr: 1<<36 + *pos%span2, ASID: 2, Kind: molcache.Read})
			*pos += 64
		}
	}
	size := func(asid uint16) int { return sim.Cache.Region(asid).MoleculeCount() }

	var pos uint64
	fmt.Println("phase A: app1 loops over 128KB, app2 over 128KB")
	phase(128<<10, 128<<10, 150_000, &pos)
	fmt.Printf("  partitions: app1 %d molecules, app2 %d molecules\n", size(1), size(2))

	fmt.Println("phase B: app1 jumps to a 1MB working set (goal blown -> growth)")
	phase(1<<20, 128<<10, 400_000, &pos)
	fmt.Printf("  partitions: app1 %d molecules, app2 %d molecules\n", size(1), size(2))

	fmt.Println("phase C: app1 back to 128KB while app2 jumps to 1MB —")
	fmt.Println("         capacity must migrate from app1 to app2")
	phase(128<<10, 1<<20, 700_000, &pos)
	fmt.Printf("  partitions: app1 %d molecules, app2 %d molecules\n", size(1), size(2))

	// Show the controller's decision log around the transitions.
	fmt.Println("\nresize decisions (one per line: action, windowed miss, size after):")
	events := sim.Controller.Events()
	step := len(events) / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(events); i += step {
		e := events[i]
		if e.ASID != 1 {
			continue
		}
		fmt.Printf("  @%8d  %-12s miss=%.3f -> %3d molecules\n",
			e.At, e.Action, e.MissRate, e.Size)
	}
	fmt.Printf("\ndaemon cost: %d cycles over %d decisions (paper: 1500 cycles/app/pass)\n",
		sim.Controller.CyclesSpent(), len(events))
}
