// Telemetry: trace a resizing run and read the live metrics.
// A two-phase workload blows its miss-rate goal mid-run; the tracer
// captures every region event and resize decision as structured events
// (streamed as JSON lines into an in-memory sink here; use a JSONLSink
// over a file in a real harness), and the registry's counters, gauges
// and histogram export as a Prometheus text page and a JSON snapshot.
package main

import (
	"fmt"
	"log"

	"molcache"
)

func main() {
	sim, err := molcache.NewSimulator(
		molcache.MolecularConfig{TotalSize: 2 << 20, Policy: molcache.Randy, Seed: 7},
		molcache.ResizeConfig{
			Period:      10_000,
			Trigger:     molcache.AdaptiveGlobalTrigger,
			DefaultGoal: 0.10,
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Attach a tracer (ring of the last 4096 events, all of them also
	// fanned into a memory sink) and a metrics registry.
	tracer := molcache.NewTracer(0)
	sink := molcache.NewMemorySink()
	tracer.SetSink(sink)
	reg := molcache.NewRegistry()
	sim.AttachTelemetry(tracer, reg)

	// Phase 1: a 128KB working set, comfortably under the goal.
	// Phase 2: jump to 1MB — the goal is blown and Algorithm 1 grows
	// the partition, emitting region-grow and resize events.
	var pos uint64
	phase := func(span uint64, n int) {
		for i := 0; i < n; i++ {
			sim.Access(molcache.Ref{Addr: pos % span, ASID: 1, Kind: molcache.Read})
			pos += 64
		}
	}
	phase(128<<10, 150_000)
	phase(1<<20, 450_000)

	// The event stream: region lifecycle and resize decisions among the
	// per-access events.
	fmt.Println("traced events (region and resize only):")
	shown := 0
	for _, ev := range sink.Events() {
		if ev.Kind == molcache.KindAccess {
			continue
		}
		fmt.Printf("  seq=%-6d @%-8d %-16s asid=%d delta=%+d size=%d %s\n",
			ev.Seq, ev.At, ev.Kind, ev.ASID, ev.Value, ev.Aux, ev.Detail)
		if shown++; shown >= 12 {
			fmt.Printf("  ... (%d events total, %d in the ring)\n",
				tracer.Emitted(), len(tracer.Events()))
			break
		}
	}

	// The metrics registry: a point-in-time snapshot, exportable as
	// Prometheus text or JSON.
	snap := reg.Snapshot()
	fmt.Println("\nmetrics snapshot (Prometheus text format):")
	fmt.Print(snap.PrometheusString())

	fmt.Printf("\nhit ratio from the counters: %.3f\n",
		float64(snap.Counters["molcache_molecular_hits_total"])/
			float64(snap.Counters["molcache_molecular_hits_total"]+
				snap.Counters["molcache_molecular_misses_total"]))
}
