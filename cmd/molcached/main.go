// Command molcached is a live multi-tenant molecular cache daemon: a
// TCP key/value server (internal/server) where each tenant is an ASID
// with its own cache region, miss-rate SLO goal and line factor, the
// paper's Algorithm 1 runs live as the per-tenant QoS controller, and
// the internal/obs introspection server exposes /tenants, /metrics,
// /regions, /decisions and /healthz.
//
// Every admitted access is journaled to a MOLC1-framed access log
// (-journal) that replays byte-identically through an offline
// Simulator — the served-traffic differential oracle (DESIGN.md §14).
// SIGTERM/SIGINT checkpoint the full server state (-checkpoint); the
// next boot warm-restores it and appends to the same journal.
//
// Usage:
//
//	molcached -listen 127.0.0.1:11411 -serve 127.0.0.1:9464 \
//	    -cache molecular:1MB:4x2:Randy -journal access.molc \
//	    -checkpoint molcached.ckpt
//
// The -demo flag drives a deterministic two-tenant SLO demo (a tight-
// goal hot-set tenant next to a scan-storm tenant) over loopback
// before the daemon starts waiting for signals.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"molcache/internal/addr"
	"molcache/internal/faults"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "molcached:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", "127.0.0.1:11411", "key/value protocol listen address")
		serve        = flag.String("serve", "", "introspection server address (empty disables)")
		cacheSpec    = flag.String("cache", "molecular:1MB:4x2:Randy", "cache spec molecular:SIZE:CxT:POLICY")
		seed         = flag.Uint64("seed", 2006, "replacement randomness seed")
		goal         = flag.Float64("goal", 0.2, "default tenant miss-rate goal")
		period       = flag.Uint64("period", 0, "initial resize period in accesses (0 = paper default)")
		shards       = flag.Int("shards", 1, "cluster shards for the epoch-parallel engine")
		batchMax     = flag.Int("batch", 256, "max requests folded into one simulator batch")
		addrBits     = flag.Uint("addr-bits", 26, "per-tenant address-space width in bits")
		publishEvery = flag.Uint64("publish-every", 8192, "refresh the obs snapshot every N accesses")
		journalPath  = flag.String("journal", "", "MOLC1 access journal path (empty disables)")
		ckptPath     = flag.String("checkpoint", "", "checkpoint path for SIGTERM save / warm restore")
		faultsPath   = flag.String("faults", "", "JSON fault campaign to inject")
		demo         = flag.Bool("demo", false, "run the two-tenant SLO demo workload, then keep serving")
		demoOps      = flag.Int("demo-ops", 20000, "operations per demo tenant")
	)
	flag.Parse()

	mcfg, err := parseCacheSpec(*cacheSpec, *seed)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Listen:         *listen,
		ObsListen:      *serve,
		Molecular:      mcfg,
		Resize:         resize.Config{Period: *period, DefaultGoal: *goal},
		Shards:         *shards,
		BatchMax:       *batchMax,
		AddrBits:       *addrBits,
		PublishEvery:   *publishEvery,
		JournalPath:    *journalPath,
		CheckpointPath: *ckptPath,
	}
	if *faultsPath != "" {
		if cfg.Faults, err = faults.Load(*faultsPath); err != nil {
			return err
		}
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if srv.WarmStarted() {
		fmt.Printf("molcached: warm restore from %s (journal seq %d)\n", *ckptPath, srv.JournalSeq())
	} else if rerr := srv.RestoreErr(); rerr != nil {
		fmt.Fprintf(os.Stderr, "molcached: restore failed, cold start: %v\n", rerr)
	}
	fmt.Printf("molcached: serving on %s\n", srv.Addr())
	if u := srv.ObsURL(); u != "" {
		fmt.Printf("molcached: introspection on %s\n", u)
	}

	// Install the signal handler before the demo: a SIGTERM mid-demo
	// must still shut down gracefully (and write the checkpoint). The
	// only goroutine-touching construct in this main is the signal
	// channel; everything else lives behind internal/server's batch
	// channel contract.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	if *demo {
		if err := runDemo(srv.Addr(), *demoOps); err != nil {
			srv.Close()
			return fmt.Errorf("demo: %w", err)
		}
	}

	<-sig
	fmt.Println("molcached: shutting down")
	if err := srv.Shutdown(); err != nil {
		srv.Close()
		return err
	}
	if *ckptPath != "" {
		fmt.Printf("molcached: checkpoint written to %s (journal seq %d)\n", *ckptPath, srv.JournalSeq())
	}
	return srv.Close()
}

// runDemo registers two tenants with contrasting SLOs and drives them
// synchronously over loopback: "hot" keeps a small reusable working
// set under a tight 5% goal while "scan" streams a large key space
// under a loose 40% goal — the partition isolation story in miniature.
// Deterministic, so repeated demos journal identical traffic.
func runDemo(address string, ops int) error {
	c, err := server.Dial(address)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Tenant("hot", 0.05, 2); err != nil {
		return err
	}
	if _, err := c.Tenant("scan", 0.4, 0); err != nil {
		return err
	}
	hot, err := c.Drive("hot", 1, ops, 64)
	if err != nil {
		return err
	}
	scan, err := c.Drive("scan", 2, ops, 8192)
	if err != nil {
		return err
	}
	fmt.Printf("molcached: demo hot:  %d sets %d gets %d dels, %d hits / %d misses\n",
		hot.Sets, hot.Gets, hot.Dels, hot.Hits, hot.Misses)
	fmt.Printf("molcached: demo scan: %d sets %d gets %d dels, %d hits / %d misses\n",
		scan.Sets, scan.Gets, scan.Dels, scan.Hits, scan.Misses)
	return nil
}

// parseCacheSpec parses molecular:SIZE:CxT:POLICY (molsim's spec shape,
// molecular-only — molcached fronts the paper's cache, not baselines).
func parseCacheSpec(spec string, seed uint64) (molecular.Config, error) {
	parts := strings.Split(spec, ":")
	if !strings.EqualFold(parts[0], "molecular") || len(parts) != 4 {
		return molecular.Config{}, fmt.Errorf("cache spec needs molecular:SIZE:CxT:POLICY, got %q", spec)
	}
	size, err := parseSize(parts[1])
	if err != nil {
		return molecular.Config{}, err
	}
	ct := strings.SplitN(strings.ToLower(parts[2]), "x", 2)
	if len(ct) != 2 {
		return molecular.Config{}, fmt.Errorf("bad clusters-x-tiles %q", parts[2])
	}
	clusters, err := strconv.Atoi(ct[0])
	if err != nil {
		return molecular.Config{}, fmt.Errorf("bad cluster count %q", ct[0])
	}
	tiles, err := strconv.Atoi(ct[1])
	if err != nil {
		return molecular.Config{}, fmt.Errorf("bad tile count %q", ct[1])
	}
	var policy molecular.ReplacementKind
	switch strings.ToLower(parts[3]) {
	case "random":
		policy = molecular.RandomReplacement
	case "randy":
		policy = molecular.RandyReplacement
	case "lru-direct", "lrudirect":
		policy = molecular.LRUDirect
	default:
		return molecular.Config{}, fmt.Errorf("unknown policy %q", parts[3])
	}
	return molecular.Config{
		TotalSize:       size,
		Clusters:        clusters,
		TilesPerCluster: tiles,
		Policy:          policy,
		Seed:            seed,
	}, nil
}

func parseSize(s string) (uint64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mul := uint64(1)
	switch {
	case strings.HasSuffix(u, "MB"):
		mul, u = addr.MB, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mul, u = addr.KB, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseUint(u, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mul, nil
}
