// Command cactigo exposes the CACTI-style analytical power/timing model:
// given a cache geometry it prints dynamic energy per access, cycle time,
// frequency and power at 70 nm, for traditional and molecular caches.
//
// Usage:
//
//	cactigo -size 8MB -assoc 4 -ports 4
//	cactigo -molecular -size 8MB -molecule 8KB -tile 64 -probes 32
//	cactigo -sweep                # the paper's Table 4 geometries
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"molcache/internal/addr"
	"molcache/internal/power"
	"molcache/internal/tabletext"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cactigo: ")
	size := flag.String("size", "8MB", "total cache size")
	assoc := flag.Int("assoc", 4, "associativity (traditional)")
	line := flag.Int("line", 64, "line size in bytes")
	ports := flag.Int("ports", 4, "read/write ports (traditional)")
	mol := flag.Bool("molecular", false, "model a molecular cache")
	molecule := flag.String("molecule", "8KB", "molecule size (molecular)")
	tile := flag.Int("tile", 64, "molecules per tile (molecular)")
	probes := flag.Int("probes", 32, "molecules probed per access (molecular average case)")
	freq := flag.Float64("freq", 0, "report power at this frequency in MHz (0 = own frequency)")
	sweep := flag.Bool("sweep", false, "print the paper's Table 4 geometry sweep")
	flag.Parse()

	if *sweep {
		printSweep()
		return
	}
	sz, err := parseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	if *mol {
		ms, err := parseSize(*molecule)
		if err != nil {
			log.Fatal(err)
		}
		me, err := power.ModelMolecular(power.MolecularGeometry{
			TotalBytes:      sz,
			MoleculeBytes:   ms,
			LineBytes:       uint64(*line),
			TileMolecules:   *tile,
			PortsPerCluster: 1,
		}, power.Tech70)
		if err != nil {
			log.Fatal(err)
		}
		f := *freq
		if f == 0 {
			f = 1000 / me.CycleTime()
		}
		fmt.Printf("molecule: %.3f nJ/access, %.2f ns cycle (with ASID stage)\n",
			me.Molecule.AccessEnergy, me.CycleTime())
		fmt.Printf("access @%d probed molecules: %.2f nJ -> %.2f W at %.0f MHz\n",
			*probes, me.AccessEnergy(*probes), power.PowerWatts(me.AccessEnergy(*probes), f), f)
		fmt.Printf("worst case (all %d tile molecules): %.2f nJ -> %.2f W at %.0f MHz\n",
			*tile, me.WorstCaseEnergy(), power.PowerWatts(me.WorstCaseEnergy(), f), f)
		return
	}
	est, err := power.Model(power.Geometry{
		SizeBytes: sz, Assoc: *assoc, LineBytes: uint64(*line), Ports: *ports,
	}, power.Tech70)
	if err != nil {
		log.Fatal(err)
	}
	f := *freq
	if f == 0 {
		f = est.FrequencyMHz()
	}
	fmt.Printf("%s (%d ports): %.2f nJ/access (tag %.2f + data %.2f)\n",
		est.Geometry.Name(), *ports, est.AccessEnergy, est.TagEnergy, est.DataEnergy)
	fmt.Printf("cycle %.2f ns (%.0f MHz), organization Ndwl=%d Ndbl=%d\n",
		est.CycleTime, est.FrequencyMHz(), est.Ndwl, est.Ndbl)
	fmt.Printf("dynamic power at %.0f MHz: %.2f W\n", f, est.PowerWatts(f))
}

func printSweep() {
	t := tabletext.New("Table 4 geometry sweep (8MB, 4 ports, 70nm)",
		"cache type", "nJ/access", "cycle (ns)", "freq (MHz)", "power (W)")
	for _, a := range []int{1, 2, 4, 8} {
		e, err := power.Model(power.Geometry{
			SizeBytes: 8 * addr.MB, Assoc: a, LineBytes: 64, Ports: 4,
		}, power.Tech70)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(e.Geometry.Name(),
			fmt.Sprintf("%.1f", e.AccessEnergy),
			fmt.Sprintf("%.2f", e.CycleTime),
			fmt.Sprintf("%.0f", e.FrequencyMHz()),
			fmt.Sprintf("%.2f", e.PowerWatts(e.FrequencyMHz())))
	}
	fmt.Println(t)
}

func parseSize(s string) (uint64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mul := uint64(1)
	switch {
	case strings.HasSuffix(u, "MB"):
		mul, u = addr.MB, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mul, u = addr.KB, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseUint(u, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mul, nil
}
