// Command molsim runs a workload mix (or a recorded trace) through one
// cache configuration and reports per-application miss rates, QoS
// deviations and (for molecular caches) partition layouts.
//
// Usage:
//
//	molsim -cache 1MB:4 -mix art,mcf -refs 4000000
//	molsim -cache molecular:6MB:3x4:Randy -mix crafty,CRC,DRR -goal 0.25
//	molsim -cache molecular:2MB:1x4:Random -trace l2refs.mtr
//
// -cache accepts either "SIZE:WAYS" for a traditional set-associative
// cache or "molecular:SIZE:CLUSTERSxTILES:POLICY" for a molecular cache.
// With -mix, the workloads run on the CMP substrate (private L1s filter
// the reference stream, as in the paper's methodology); with -trace, a
// binary trace recorded by tracegen is replayed directly into the cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"molcache"
	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/cmp"
	"molcache/internal/engine"
	"molcache/internal/faults"
	"molcache/internal/invariant"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/obs"
	"molcache/internal/resize"
	"molcache/internal/shard"
	"molcache/internal/stats"
	"molcache/internal/tabletext"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("molsim: ")
	cacheSpec := flag.String("cache", "1MB:4", "cache spec: SIZE:WAYS or molecular:SIZE:CxT:POLICY")
	mix := flag.String("mix", "", "comma-separated workload names (see -list)")
	traceIn := flag.String("trace", "", "binary trace file to replay instead of -mix")
	refs := flag.Int("refs", 4_000_000, "processor references to drive (with -mix)")
	goal := flag.Float64("goal", 0.10, "miss-rate goal for every application")
	seed := flag.Uint64("seed", 2006, "simulation seed")
	list := flag.Bool("list", false, "list available workloads and exit")
	faultsPath := flag.String("faults", "", "fault campaign JSON to inject (molecular caches only)")
	refProbe := flag.Bool("reference-probe", false, "use the linear probe oracle instead of the fast-path block index (molecular caches only; results are identical, simulation is slower)")
	shards := flag.Int("shards", 0, "replay -trace through the epoch-parallel sharded engine with N cluster shards (0: serial loop; molecular caches only; results are identical)")
	batchSize := flag.Int("batch", 4096, "with -shards, accesses per AccessBatch epoch window")
	checkEvery := flag.Uint64("check-invariants", 0, "audit structural invariants every N L2 accesses (0 disables)")
	checkpointPath := flag.String("checkpoint", "", "write a crash-safe MOLC1 checkpoint here at run end (molecular caches only)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "with -checkpoint, also rewrite the checkpoint every N L2 accesses (0: only at run end)")
	restorePath := flag.String("restore", "", "restore cache and controller state from a MOLC1 checkpoint before running; -cache, -goal and -faults are ignored (the checkpoint carries them)")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	obsFlags.RegisterSpans(flag.CommandLine)
	publishEvery := flag.Uint64("publish-every", 65536, "with -serve, refresh the introspection snapshot every N L2 accesses")
	serveLinger := flag.Duration("serve-linger", 0, "with -serve, keep the introspection server up this long after the run completes")
	explainResize := flag.Bool("explain-resize", false, "print the tail of the resize decision log after the run (molecular caches only)")
	var prof telemetry.ProfileConfig
	// -trace already means "binary trace to replay", so the execution
	// trace takes the -exectrace name here.
	prof.RegisterFlagsNamed(flag.CommandLine, "cpuprofile", "memprofile", "exectrace")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workload.Names(), "\n"))
		return
	}

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	pipe, err := obsFlags.Setup()
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()

	// -restore rebuilds the molecular cache and its controller from a
	// MOLC1 checkpoint (telemetry attaches during the restore so the
	// registry continues where the checkpointed one left off); otherwise
	// the cache is built fresh from the -cache spec.
	var (
		l2   engine.Cache
		mol  *molecular.Cache
		ctrl *resize.Controller
	)
	if *restorePath != "" {
		if *faultsPath != "" {
			log.Fatal("-faults cannot combine with -restore: the checkpoint carries the campaign")
		}
		sim, err := molcache.RestoreSimulator(*restorePath, pipe.Tracer, pipe.Registry)
		if err != nil {
			log.Fatalf("restore %s: %v", *restorePath, err)
		}
		log.Printf("restored simulation state from %s (%d accesses already served)",
			*restorePath, sim.Cache.Addresses())
		l2, mol, ctrl = sim.Cache, sim.Cache, sim.Controller
	} else {
		l2, mol, err = buildCache(*cacheSpec, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if *faultsPath != "" {
			if mol == nil {
				log.Fatal("-faults requires a molecular cache")
			}
			camp, err := faults.Load(*faultsPath)
			if err != nil {
				log.Fatal(err)
			}
			inj, err := faults.NewInjector(camp)
			if err != nil {
				log.Fatal(err)
			}
			if err := mol.AttachFaults(inj); err != nil {
				log.Fatal(err)
			}
		}
		if mol != nil {
			ctrl, err = resize.New(mol, resize.Config{DefaultGoal: *goal})
			if err != nil {
				log.Fatal(err)
			}
		}
		if pipe.Tracer != nil || pipe.Registry != nil {
			if mol != nil {
				mol.AttachTelemetry(pipe.Tracer, pipe.Registry)
			} else if tc, ok := l2.(*cache.Cache); ok {
				tc.AttachTelemetry(pipe.Registry, "l2")
			}
			if ctrl != nil {
				ctrl.AttachTelemetry(pipe.Tracer, pipe.Registry)
			}
		}
	}

	if *refProbe {
		if mol == nil {
			log.Fatal("-reference-probe requires a molecular cache")
		}
		mol.UseReferenceProbe(true)
	}
	if pipe.Spans != nil {
		if !engine.AttachSpans(l2, pipe.Spans) {
			log.Print("-trace-out: this cache has no traceable access pipeline; the span trace will be empty")
		}
		if ctrl != nil {
			ctrl.AttachSpans(pipe.Spans)
		}
	}
	if pipe.Server != nil {
		log.Printf("introspection server on http://%s", pipe.Server.Addr())
	}

	// Per-access hooks run from the simulation goroutine: with -serve,
	// republish the introspection snapshot every -publish-every accesses
	// (handlers never touch live state); with -checkpoint-every, rewrite
	// the checkpoint crash-safely every N accesses.
	var hooks []func()
	if pipe.Publisher != nil {
		every := *publishEvery
		if every == 0 {
			every = 1
		}
		var accesses uint64
		hooks = append(hooks, func() {
			accesses++
			if accesses%every == 0 {
				pipe.Publish(mol, ctrl)
			}
		})
		// The initial publish makes the endpoints meaningful before the
		// first interval elapses.
		pipe.Publish(mol, ctrl)
	}
	var sim *molcache.Simulator
	if *checkpointEvery > 0 && *checkpointPath == "" {
		log.Fatal("-checkpoint-every requires -checkpoint PATH")
	}
	if *checkpointPath != "" {
		if mol == nil || ctrl == nil {
			log.Fatal("-checkpoint requires a molecular cache")
		}
		sim = &molcache.Simulator{Cache: mol, Controller: ctrl}
		if every := *checkpointEvery; every > 0 {
			var accesses uint64
			hooks = append(hooks, func() {
				accesses++
				if accesses%every == 0 {
					if err := sim.Checkpoint(*checkpointPath); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				}
			})
		}
	}
	var onAccess func()
	if len(hooks) > 0 {
		hs := hooks
		onAccess = func() {
			for _, h := range hs {
				h()
			}
		}
	}

	var (
		asids []uint16
		names map[uint16]string
		chk   *invariant.Checker
	)
	if *shards > 0 {
		if mol == nil {
			log.Fatal("-shards requires a molecular cache")
		}
		if *traceIn == "" {
			log.Fatal("-shards applies to -trace replay (the CMP substrate generates references one at a time)")
		}
		if *batchSize <= 0 {
			log.Fatal("-batch must be positive")
		}
	}
	switch {
	case *traceIn != "":
		asids, names, chk = replayTrace(*traceIn, l2, mol, ctrl, *checkEvery, onAccess, *shards, *batchSize)
	case *mix != "":
		asids, names, chk, err = runMix(*mix, l2, ctrl, *refs, *seed, *checkEvery, onAccess)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -mix or -trace (or -list)")
	}
	if chk != nil {
		chk.Run() // final audit after the last access
	}
	pipe.Publish(mol, ctrl) // final snapshot for lingering servers
	if sim != nil {
		if err := sim.Checkpoint(*checkpointPath); err != nil {
			log.Printf("final checkpoint: %v", err)
		} else {
			log.Printf("checkpoint written to %s", *checkpointPath)
		}
	}

	report(l2, mol, ctrl, asids, names, *goal)
	if *explainResize {
		explainResizeLog(ctrl, names)
	}
	ok := reportFaults(mol, chk)
	if pipe.Server != nil && *serveLinger > 0 {
		log.Printf("lingering on http://%s for %s", pipe.Server.Addr(), *serveLinger)
		time.Sleep(*serveLinger)
	}
	if !ok {
		pipe.Close()
		stopProf()
		os.Exit(1)
	}
}

// explainResizeTail is how many trailing decisions -explain-resize
// prints; the full log is available over -serve at /decisions.
const explainResizeTail = 50

// explainResizeLog prints the tail of the controller's decision log:
// every Algorithm 1 evaluation with its inputs, the action taken and
// the reason the controller chose it.
func explainResizeLog(ctrl *resize.Controller, names map[uint16]string) {
	if ctrl == nil {
		log.Print("-explain-resize requires a molecular cache with a resize controller")
		return
	}
	decs := ctrl.Decisions()
	total := ctrl.DecisionCount()
	if len(decs) == 0 {
		fmt.Println("resize decisions: none recorded")
		return
	}
	if len(decs) > explainResizeTail {
		decs = decs[len(decs)-explainResizeTail:]
	}
	fmt.Printf("resize decisions (last %d of %d):\n", len(decs), total)
	for _, d := range decs {
		app := names[d.ASID]
		if app == "" {
			app = fmt.Sprintf("asid%d", d.ASID)
		}
		fmt.Printf("  #%-5d @%-9d %-8s miss %.3f vs goal %.3f  %-11s %+3d -> %3d  %s\n",
			d.Seq, d.At, app, d.MissRate, d.Goal, d.Action, d.Delta, d.SizeAfter, d.Reason)
	}
}

// buildCache parses the -cache spec.
func buildCache(spec string, seed uint64) (engine.Cache, *molecular.Cache, error) {
	parts := strings.Split(spec, ":")
	if strings.EqualFold(parts[0], "molecular") {
		if len(parts) != 4 {
			return nil, nil, fmt.Errorf("molecular spec needs molecular:SIZE:CxT:POLICY, got %q", spec)
		}
		size, err := parseSize(parts[1])
		if err != nil {
			return nil, nil, err
		}
		ct := strings.SplitN(strings.ToLower(parts[2]), "x", 2)
		if len(ct) != 2 {
			return nil, nil, fmt.Errorf("bad clusters-x-tiles %q", parts[2])
		}
		clusters, err := strconv.Atoi(ct[0])
		if err != nil {
			return nil, nil, fmt.Errorf("bad cluster count %q", ct[0])
		}
		tiles, err := strconv.Atoi(ct[1])
		if err != nil {
			return nil, nil, fmt.Errorf("bad tile count %q", ct[1])
		}
		var policy molecular.ReplacementKind
		switch strings.ToLower(parts[3]) {
		case "random":
			policy = molecular.RandomReplacement
		case "randy":
			policy = molecular.RandyReplacement
		case "lru-direct", "lrudirect":
			policy = molecular.LRUDirect
		default:
			return nil, nil, fmt.Errorf("unknown policy %q", parts[3])
		}
		mc, err := molecular.New(molecular.Config{
			TotalSize:       size,
			Clusters:        clusters,
			TilesPerCluster: tiles,
			Policy:          policy,
			Seed:            seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return mc, mc, nil
	}
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("traditional spec needs SIZE:WAYS, got %q", spec)
	}
	size, err := parseSize(parts[0])
	if err != nil {
		return nil, nil, err
	}
	ways, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, nil, fmt.Errorf("bad ways %q", parts[1])
	}
	c, err := cache.New(cache.Config{Size: size, Ways: ways, LineSize: 64, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return c, nil, nil
}

// parseSize accepts "512KB", "2MB", "6MB", or raw bytes.
func parseSize(s string) (uint64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mul := uint64(1)
	switch {
	case strings.HasSuffix(u, "MB"):
		mul, u = addr.MB, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mul, u = addr.KB, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseUint(u, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mul, nil
}

// runMix drives the CMP substrate over the shared cache. onAccess,
// when non-nil, runs after every L2 access (the -serve publish hook).
func runMix(mix string, l2 engine.Cache, ctrl *resize.Controller,
	refs int, seed uint64, checkEvery uint64, onAccess func()) ([]uint16, map[uint16]string, *invariant.Checker, error) {
	sys, err := cmp.New(l2, cmp.Config{})
	if err != nil {
		return nil, nil, nil, err
	}
	var chk *invariant.Checker
	if checkEvery > 0 {
		chk = invariant.NewChecker(invariant.SystemSource(sys), checkEvery)
	}
	if ctrl != nil || chk != nil || onAccess != nil {
		sys.OnL2Access = func(trace.Ref, engine.Result) {
			if ctrl != nil {
				ctrl.Tick()
			}
			if chk != nil {
				chk.Tick()
			}
			if onAccess != nil {
				onAccess()
			}
		}
	}
	var asids []uint16
	names := map[uint16]string{}
	for i, name := range strings.Split(mix, ",") {
		name = strings.TrimSpace(name)
		asid := uint16(i + 1)
		gen, err := workload.New(name, uint64(asid)<<36, seed+uint64(asid)*1000)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := sys.AddCore(asid, gen); err != nil {
			return nil, nil, nil, err
		}
		asids = append(asids, asid)
		names[asid] = name
	}
	sys.Run(refs)
	return asids, names, chk, nil
}

// replayTrace feeds a recorded binary trace straight into the cache.
// onAccess, when non-nil, runs after every access (the -serve publish
// hook). With shards > 0 the replay streams through the epoch-parallel
// sharded engine in windows of batch accesses — results and end state
// are identical to the serial loop; only the invariant/publish hooks
// move to window boundaries (they observe the cache, and the cache is
// only quiescent between batches).
func replayTrace(path string, l2 engine.Cache, mol *molecular.Cache,
	ctrl *resize.Controller, checkEvery uint64, onAccess func(),
	shards, batch int) ([]uint16, map[uint16]string, *invariant.Checker) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	var chk *invariant.Checker
	if checkEvery > 0 {
		if mol != nil {
			chk = invariant.NewChecker(invariant.CacheSource(mol), checkEvery)
		} else {
			log.Print("-check-invariants audits molecular caches only; skipping")
		}
	}
	seen := map[uint16]bool{}
	var asids []uint16
	note := func(ref trace.Ref) {
		if chk != nil {
			chk.Tick()
		}
		if onAccess != nil {
			onAccess()
		}
		if !seen[ref.ASID] {
			seen[ref.ASID] = true
			asids = append(asids, ref.ASID)
		}
	}
	if shards > 0 {
		eng := shard.New(mol, ctrl, shards)
		log.Printf("sharded replay: %d shards (requested %d), %d-access batches", eng.Shards(), shards, batch)
		buf := make([]trace.Ref, 0, batch)
		flush := func() {
			if len(buf) == 0 {
				return
			}
			eng.AccessBatch(buf)
			for _, ref := range buf {
				note(ref)
			}
			buf = buf[:0]
		}
		for {
			ref, err := r.Read()
			if err != nil {
				break
			}
			buf = append(buf, ref)
			if len(buf) == batch {
				flush()
			}
		}
		flush()
	} else {
		for {
			ref, err := r.Read()
			if err != nil {
				break
			}
			l2.Access(ref)
			if ctrl != nil {
				ctrl.Tick()
			}
			note(ref)
		}
	}
	names := map[uint16]string{}
	for _, a := range asids {
		names[a] = fmt.Sprintf("asid%d", a)
	}
	return asids, names, chk
}

// report prints per-application results and molecular internals.
func report(l2 engine.Cache, mol *molecular.Cache, ctrl *resize.Controller,
	asids []uint16, names map[uint16]string, goal float64) {
	var ledger *stats.Ledger
	switch c := l2.(type) {
	case *cache.Cache:
		ledger = c.Ledger()
	case *molecular.Cache:
		ledger = c.Ledger()
	default:
		log.Fatal("unknown cache type")
	}

	t := tabletext.New(fmt.Sprintf("%s — per-application results", l2.Name()),
		"app", "accesses", "miss rate", "excess over goal")
	goals := metrics.Goals{}
	for _, a := range asids {
		goals[a] = goal
	}
	for _, d := range metrics.Deviations(ledger, goals) {
		t.AddRow(names[d.ASID],
			fmt.Sprintf("%d", ledger.App(d.ASID).Accesses()),
			fmt.Sprintf("%.4f", d.MissRate),
			fmt.Sprintf("%.4f", d.Excess))
	}
	fmt.Println(t)
	fmt.Printf("overall miss rate: %.4f   average deviation: %.4f\n",
		ledger.Total.MissRate(), metrics.AverageDeviation(ledger, goals))

	if mol == nil {
		return
	}
	fmt.Printf("average molecules probed per access: %.1f (of %d total)\n",
		mol.AverageProbes(), mol.TotalMolecules())
	pt := tabletext.New("partitions", "app", "molecules", "rows (replacement view)")
	for _, r := range mol.Regions() {
		pt.AddRow(names[r.ASID()],
			fmt.Sprintf("%d", r.MoleculeCount()),
			fmt.Sprintf("%v", r.Rows()))
	}
	fmt.Println(pt)
	if ctrl != nil {
		fmt.Printf("resize passes: %d decisions, %d daemon cycles\n",
			len(ctrl.Events()), ctrl.CyclesSpent())
	}
}

// reportFaults prints the fault-injection and invariant-audit sections.
// It returns false when the run must exit nonzero: an invariant audit
// found violations, or scheduled molecule failures were never delivered.
func reportFaults(mol *molecular.Cache, chk *invariant.Checker) bool {
	ok := true
	if mol != nil && mol.Faults() != nil {
		inj := mol.Faults()
		st := inj.Stats()
		deg := mol.Degradation()
		fmt.Printf("faults injected: %d molecule failures (%d pending), %d line corruptions, %d delayed lookups, %d out-of-range dropped\n",
			st.MoleculeFailures, inj.PendingFailures(), st.LineCorruptions,
			st.NoCDelayedLookups, st.SkippedOutOfRange)
		fmt.Printf("degradation: %d molecules retired (%d writebacks, %d lines lost), %d corruptions (%d dirty), %d NoC retries (%d abandoned), %d uncached bypasses\n",
			deg.RetiredMolecules, deg.RetirementWritebacks, deg.RetirementLinesLost,
			deg.LineCorruptions, deg.DirtyCorruptions,
			deg.NoCRetries, deg.NoCAbandonedLookups, deg.UncachedBypasses)
		if pending := inj.PendingFailures(); pending > 0 {
			log.Printf("%d scheduled molecule failures never delivered (run longer?)", pending)
		}
		if deg.RetiredMolecules != st.MoleculeFailures {
			log.Printf("delivered %d molecule failures but retired %d molecules",
				st.MoleculeFailures, deg.RetiredMolecules)
			ok = false
		}
	}
	if chk != nil {
		vs := chk.Violations()
		fmt.Printf("invariant audits: %d runs, %d violations\n", chk.Runs(), len(vs))
		if len(vs) > 0 {
			fmt.Println(chk.Summary())
			for i, v := range vs {
				if i == 20 {
					fmt.Printf("  ... %d more\n", len(vs)-20)
					break
				}
				fmt.Printf("  [%s] %s\n", v.Rule, v.Detail)
			}
			ok = false
		}
	}
	return ok
}
