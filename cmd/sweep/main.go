// Command sweep runs a parameter-sensitivity study of the molecular
// cache on the four-benchmark SPEC mix and emits CSV: one row per
// (total size, molecule size, policy, line factor) combination with the
// average deviation from the miss-rate goal, average probes per access
// (the energy proxy) and the overall miss rate.
//
// Usage:
//
//	sweep -refs 16000000 > sweep.csv
//	sweep -sizes 2MB,4MB -molecules 8KB,32KB -policies Randy -jobs 8
//
// -jobs fans the grid points across workers; the CSV is byte-identical
// at any worker count (rows stay in grid order).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"molcache/internal/experiments"
	"molcache/internal/obs"
	"molcache/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	refs := flag.Int("refs", 16_000_000, "processor references for the trace capture")
	goal := flag.Float64("goal", 0.10, "per-application miss-rate goal")
	sizesF := flag.String("sizes", "1MB,2MB,4MB,8MB", "total sizes to sweep")
	molsF := flag.String("molecules", "8KB,16KB,32KB", "molecule sizes to sweep")
	polsF := flag.String("policies", "Random,Randy,LRU-Direct", "replacement policies to sweep")
	lfF := flag.String("linefactors", "1", "line factors (lines per miss) to sweep")
	seed := flag.Uint64("seed", 2006, "simulation seed")
	jobs := flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS, 1 = serial)")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var prof telemetry.ProfileConfig
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	pipe, err := obsFlags.Setup()
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()
	if pipe.Server != nil {
		log.Printf("introspection server on http://%s (scheduler events and metrics; no region topology here — that is molsim -serve)", pipe.Server.Addr())
	}

	opt := experiments.SweepOptions{
		ProcessorRefs: *refs,
		Seed:          *seed,
		Goal:          *goal,
		Jobs:          *jobs,
		Tracer:        pipe.Tracer,
		Registry:      pipe.Registry,
	}
	if opt.Sizes, err = experiments.ParseSizes(*sizesF); err != nil {
		log.Fatal(err)
	}
	if opt.MoleculeSizes, err = experiments.ParseSizes(*molsF); err != nil {
		log.Fatal(err)
	}
	if opt.Policies, err = experiments.ParsePolicies(*polsF); err != nil {
		log.Fatal(err)
	}
	if opt.LineFactors, err = experiments.ParseInts(*lfF); err != nil {
		log.Fatal(err)
	}

	rows, err := experiments.Sweep(opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if r.Skip != nil {
			// Infeasible geometry (e.g. molecule > tile): skipped,
			// noted on stderr.
			fmt.Fprintf(os.Stderr, "skip %s: %v\n", r.Point(), r.Skip)
		}
	}
	if err := experiments.WriteSweepCSV(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
}
