// Command sweep runs a parameter-sensitivity study of the molecular
// cache on the four-benchmark SPEC mix and emits CSV: one row per
// (total size, molecule size, policy, line factor) combination with the
// average deviation from the miss-rate goal, average probes per access
// (the energy proxy) and the overall miss rate.
//
// Usage:
//
//	sweep -refs 16000000 > sweep.csv
//	sweep -sizes 2MB,4MB -molecules 8KB,32KB -policies Randy
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/cmp"
	"molcache/internal/metrics"
	"molcache/internal/molecular"
	"molcache/internal/resize"
	"molcache/internal/telemetry"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	refs := flag.Int("refs", 16_000_000, "processor references for the trace capture")
	goal := flag.Float64("goal", 0.10, "per-application miss-rate goal")
	sizesF := flag.String("sizes", "1MB,2MB,4MB,8MB", "total sizes to sweep")
	molsF := flag.String("molecules", "8KB,16KB,32KB", "molecule sizes to sweep")
	polsF := flag.String("policies", "Random,Randy,LRU-Direct", "replacement policies to sweep")
	lfF := flag.String("linefactors", "1", "line factors (lines per miss) to sweep")
	seed := flag.Uint64("seed", 2006, "simulation seed")
	metricsOut := flag.String("metrics", "", "write a final metrics snapshot (Prometheus text) to this file")
	var prof telemetry.ProfileConfig
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
		defer func() {
			text := reg.Snapshot().PrometheusString()
			if err := os.WriteFile(*metricsOut, []byte(text), 0o644); err != nil {
				log.Print(err)
			}
		}()
	}

	sizes, err := parseSizes(*sizesF)
	if err != nil {
		log.Fatal(err)
	}
	molecules, err := parseSizes(*molsF)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := parsePolicies(*polsF)
	if err != nil {
		log.Fatal(err)
	}
	lineFactors, err := parseInts(*lfF)
	if err != nil {
		log.Fatal(err)
	}

	refsOut := capture(*refs, *seed)
	goals := map[uint16]float64{}
	mg := metrics.Goals{}
	for asid := uint16(1); asid <= 4; asid++ {
		goals[asid] = *goal
		mg[asid] = *goal
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{
		"total_size", "molecule_size", "policy", "line_factor",
		"avg_deviation", "overall_miss_rate", "avg_probes", "free_molecules",
	}); err != nil {
		log.Fatal(err)
	}
	for _, size := range sizes {
		for _, mol := range molecules {
			for _, pol := range policies {
				for _, lf := range lineFactors {
					row, err := runOne(size, mol, pol, lf, goals, mg, refsOut, *seed, reg)
					if err != nil {
						// Infeasible geometry (e.g. molecule > tile):
						// skip, noting it on stderr.
						fmt.Fprintf(os.Stderr, "skip %s/%s/%s/x%d: %v\n",
							addr.Bytes(size), addr.Bytes(mol), pol, lf, err)
						continue
					}
					if err := w.Write(row); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
}

// capture records the SPEC mix's L1-miss stream once.
func capture(refs int, seed uint64) []trace.Ref {
	l2 := cache.MustNew(cache.Config{Size: 1 * addr.MB, Ways: 4, LineSize: 64})
	sys, err := cmp.New(l2, cmp.Config{CaptureL1Misses: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range []string{"art", "mcf", "ammp", "parser"} {
		asid := uint16(i + 1)
		gen, err := workload.New(name, uint64(asid)<<36, seed+uint64(asid)*1000)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.AddCore(asid, gen); err != nil {
			log.Fatal(err)
		}
	}
	sys.Run(refs)
	return sys.Captured()
}

// runOne replays the trace into one configuration. When reg is non-nil
// the counters accumulate across every swept combination (the gauges
// reflect the last one).
func runOne(size, mol uint64, pol molecular.ReplacementKind, lf int,
	goals map[uint16]float64, mg metrics.Goals, refs []trace.Ref, seed uint64,
	reg *telemetry.Registry) ([]string, error) {
	mc, err := molecular.New(molecular.Config{
		TotalSize:    size,
		MoleculeSize: mol,
		Policy:       pol,
		LineFactor:   lf,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	for asid := uint16(1); asid <= 4; asid++ {
		if _, err := mc.CreateRegion(asid, molecular.RegionOptions{
			HomeCluster: 0, HomeTile: int(asid - 1),
		}); err != nil {
			return nil, err
		}
	}
	ctrl, err := resize.New(mc, resize.Config{Goals: goals})
	if err != nil {
		return nil, err
	}
	if reg != nil {
		mc.AttachTelemetry(nil, reg)
		ctrl.AttachTelemetry(nil, reg)
	}
	for _, r := range refs {
		mc.Access(r)
		ctrl.Tick()
	}
	return []string{
		addr.Bytes(size),
		addr.Bytes(mol),
		string(pol),
		strconv.Itoa(lf),
		fmt.Sprintf("%.4f", metrics.AverageDeviation(mc.Ledger(), mg)),
		fmt.Sprintf("%.4f", mc.Ledger().Total.MissRate()),
		fmt.Sprintf("%.1f", mc.AverageProbes()),
		strconv.Itoa(mc.FreeMolecules()),
	}, nil
}

func parseSizes(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		u := strings.ToUpper(strings.TrimSpace(part))
		mul := uint64(1)
		switch {
		case strings.HasSuffix(u, "MB"):
			mul, u = addr.MB, strings.TrimSuffix(u, "MB")
		case strings.HasSuffix(u, "KB"):
			mul, u = addr.KB, strings.TrimSuffix(u, "KB")
		}
		n, err := strconv.ParseUint(u, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n*mul)
	}
	return out, nil
}

func parsePolicies(s string) ([]molecular.ReplacementKind, error) {
	var out []molecular.ReplacementKind
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "random":
			out = append(out, molecular.RandomReplacement)
		case "randy":
			out = append(out, molecular.RandyReplacement)
		case "lru-direct", "lrudirect":
			out = append(out, molecular.LRUDirect)
		default:
			return nil, fmt.Errorf("unknown policy %q", part)
		}
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
