// Command moltop is a polling terminal dashboard over a molcache
// introspection server (a simulation started with -serve): per-ASID
// region occupancy, miss rate against goal, the last resize action and
// headline cache metrics, refreshed in place like top(1). If the server
// goes away (restart, network blip) the last good frame stays on screen
// under a STALE banner while reconnects back off exponentially.
//
// Usage:
//
//	molsim -cache molecular:6MB:3x4:Randy -mix crafty,CRC,DRR -serve :9464 &
//	moltop -addr localhost:9464
//	moltop -addr localhost:9464 -once          # one snapshot, no screen control
//	moltop -addr localhost:9464 -interval 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"molcache/internal/obs"
	"molcache/internal/tabletext"
	"molcache/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("moltop: ")
	addr := flag.String("addr", "localhost:9464", "introspection server address (host:port or URL)")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	client := &http.Client{Timeout: 5 * time.Second}
	// The dashboard must survive introspection-server restarts: on any
	// fetch failure the last good frame stays on screen under a visible
	// STALE banner while reconnect attempts back off exponentially
	// (capped), snapping back to the normal cadence on the first success.
	const maxBackoff = 30 * time.Second
	var (
		lastFrame string    // last successfully rendered frame
		lastGood  time.Time // when it was rendered
		backoff   = *interval
	)
	for {
		frame, err := render(client, base)
		if *once {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(frame)
			return
		}
		if err == nil {
			lastFrame, lastGood = frame, time.Now()
			backoff = *interval
			// Clear and re-home like top(1); one Write per frame avoids tearing.
			os.Stdout.WriteString("\x1b[H\x1b[2J" + frame)
			time.Sleep(*interval)
			continue
		}
		banner := fmt.Sprintf("\x1b[7m STALE \x1b[0m %v — reconnecting in %s",
			err, backoff.Round(time.Millisecond))
		if lastFrame != "" {
			banner += fmt.Sprintf("\nshowing last snapshot from %s ago",
				time.Since(lastGood).Round(time.Second))
		}
		os.Stdout.WriteString("\x1b[H\x1b[2J" + banner + "\n\n" + lastFrame)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// fetch GETs path and returns the body.
func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return body, nil
}

// render fetches /regions and /metrics and formats one dashboard frame.
func render(client *http.Client, base string) (string, error) {
	regionsBody, err := fetch(client, base+"/regions")
	if err != nil {
		return "", err
	}
	var st obs.State
	if err := json.Unmarshal(regionsBody, &st); err != nil {
		return "", fmt.Errorf("bad /regions payload: %w", err)
	}
	metricsBody, err := fetch(client, base+"/metrics")
	if err != nil {
		return "", err
	}
	snap, err := telemetry.ParsePrometheus(strings.NewReader(string(metricsBody)))
	if err != nil {
		return "", fmt.Errorf("bad /metrics payload: %w", err)
	}

	var b strings.Builder
	name := st.Cache
	if name == "" {
		name = "(no state published yet)"
	}
	fmt.Fprintf(&b, "moltop — %s @ %s\n", name, base)
	fmt.Fprintf(&b, "accesses %d   miss rate %.4f   free molecules %d   remote cycles %d\n\n",
		st.Accesses, st.MissRate, st.FreeMolecules, st.RemoteCycles)

	t := tabletext.New("regions",
		"asid", "molecules", "tiles", "accesses", "miss rate", "goal", "excess", "last resize")
	for _, r := range st.Regions {
		asid := fmt.Sprintf("%d", r.ASID)
		if r.Shared {
			asid += " (shared)"
		}
		goal, excess := "-", "-"
		if r.Goal > 0 {
			goal = fmt.Sprintf("%.3f", r.Goal)
			excess = fmt.Sprintf("%+.3f", r.Deviation)
		}
		last := "-"
		if d := r.LastResize; d != nil {
			last = fmt.Sprintf("%s %+d @%d", d.Action, d.Delta, d.At)
		}
		t.AddRow(asid,
			fmt.Sprintf("%d", r.Molecules),
			tileSummary(r.Tiles),
			fmt.Sprintf("%d", r.Accesses),
			fmt.Sprintf("%.4f", r.MissRate),
			goal, excess, last)
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	m := tabletext.New("cache metrics", "metric", "value")
	for _, k := range []string{
		"molcache_molecular_hits_total",
		"molcache_molecular_misses_total",
		"molcache_molecular_remote_tile_hits_total",
		"molcache_molecular_tag_probes_total",
	} {
		if v, ok := snap.Counters[k]; ok {
			m.AddRow(k, fmt.Sprintf("%d", v))
		}
	}
	// Resize actions are labeled per action; fold them into one line.
	if total, detail := sumLabeled(snap.Counters, "molcache_resize_actions_total"); total > 0 {
		m.AddRow("molcache_resize_actions_total", fmt.Sprintf("%d (%s)", total, detail))
	}
	for _, k := range []string{
		"molcache_molecular_avg_probes_per_access",
		"noc_average_hops",
		"noc_wire_energy_nj",
	} {
		if v, ok := snap.Gauges[k]; ok {
			m.AddRow(k, fmt.Sprintf("%.3f", v))
		}
	}
	for _, k := range []string{
		"molcache_molecular_probe_count",
		"molcache_access_service_cycles",
		"noc_hop_latency_cycles",
	} {
		if h, ok := snap.Histograms[k]; ok && h.Count > 0 {
			m.AddRow(k+" (mean)", fmt.Sprintf("%.2f over %d", h.Sum/float64(h.Count), h.Count))
		}
	}
	b.WriteString(m.String())
	return b.String(), nil
}

// sumLabeled folds a labeled counter family (`name{label="v"}`) into a
// total plus a sorted "v:n v:n" breakdown.
func sumLabeled(counters map[string]uint64, name string) (uint64, string) {
	var total uint64
	var keys []string
	for k := range counters {
		if strings.HasPrefix(k, name+"{") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		total += counters[k]
		label := strings.TrimSuffix(strings.TrimPrefix(k, name+"{"), "}")
		if i := strings.IndexByte(label, '='); i >= 0 {
			label = strings.Trim(label[i+1:], `"`)
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, counters[k]))
	}
	return total, strings.Join(parts, " ")
}

// tileSummary renders a compact tile:count list, e.g. "0:12 1:4".
func tileSummary(tiles []obs.TileCount) string {
	if len(tiles) == 0 {
		return "-"
	}
	parts := make([]string, len(tiles))
	for i, tc := range tiles {
		parts[i] = fmt.Sprintf("%d:%d", tc.Tile, tc.Molecules)
	}
	return strings.Join(parts, " ")
}
