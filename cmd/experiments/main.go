// Command experiments reproduces every table and figure of the paper's
// evaluation section and prints them in the paper's layout.
//
// Usage:
//
//	experiments [-run all|table1|figure5|related|table2|figure6|table4|table5|headline]
//	            [-refs N] [-seed S]
//
// -refs is the number of processor-side references driven through the
// CMP substrate per experiment (default 48M, which yields L2 traces of
// roughly the paper's 3.9M-reference scale).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"molcache/internal/addr"
	"molcache/internal/experiments"
	"molcache/internal/tabletext"
	"molcache/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	run := flag.String("run", "all", "experiment to run: all, table1, figure5, related, table2, figure6, table4, table5, headline")
	refs := flag.Int("refs", 0, "processor references per experiment (0 = default 48M)")
	seed := flag.Uint64("seed", 0, "simulation seed (0 = default)")
	var prof telemetry.ProfileConfig
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	opt := experiments.Options{ProcessorRefs: *refs, Seed: *seed}
	want := strings.ToLower(*run)
	valid := map[string]bool{
		"all": true, "table1": true, "figure5": true, "table2": true,
		"figure6": true, "table4": true, "table5": true, "headline": true,
		"related": true,
	}
	if !valid[want] {
		log.Fatalf("unknown -run %q", *run)
	}
	all := want == "all"

	if all || want == "table1" {
		runTable1(opt)
	}
	if all || want == "figure5" {
		runFigure5(opt)
	}
	if all || want == "related" {
		runRelated(opt)
	}
	// table2 feeds figure6, table4, table5 and the headline; compute it
	// once when any of them is requested.
	needT2 := all || want == "table2" || want == "figure6" ||
		want == "table4" || want == "table5" || want == "headline"
	if !needT2 {
		return
	}
	t2, err := experiments.Table2(opt)
	if err != nil {
		log.Fatal(err)
	}
	if all || want == "table2" {
		renderTable2(t2)
	}
	if all || want == "figure6" {
		renderFigure6(experiments.Figure6(t2))
	}
	needT4 := all || want == "table4" || want == "table5" || want == "headline"
	if !needT4 {
		return
	}
	t4, err := experiments.Table4(opt, t2)
	if err != nil {
		log.Fatal(err)
	}
	if all || want == "table4" {
		renderTable4(t4)
	}
	if all || want == "table5" {
		t5, err := experiments.Table5(t2, t4)
		if err != nil {
			log.Fatal(err)
		}
		renderTable5(t5)
	}
	if all || want == "headline" {
		h, err := experiments.ComputeHeadline(t2, t4)
		if err != nil {
			log.Fatal(err)
		}
		renderHeadline(h)
	}
}

func runRelated(opt experiments.Options) {
	rows, err := experiments.RelatedWork(opt)
	if err != nil {
		log.Fatal(err)
	}
	t := tabletext.New(
		"Related-work comparison (2MB, 10% goal on art/ammp/parser; schemes from the paper's section 2)",
		"scheme", "avg deviation", "art", "mcf", "ammp", "parser",
	)
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.4f", r.Deviation),
			fmt.Sprintf("%.3f", r.PerAppMiss["art"]),
			fmt.Sprintf("%.3f", r.PerAppMiss["mcf"]),
			fmt.Sprintf("%.3f", r.PerAppMiss["ammp"]),
			fmt.Sprintf("%.3f", r.PerAppMiss["parser"]))
	}
	fmt.Println(t)
}

func runTable1(opt experiments.Options) {
	rows, err := experiments.Table1(opt)
	if err != nil {
		log.Fatal(err)
	}
	t := tabletext.New(
		"Table 1: miss rate depends on the co-scheduled benchmarks (shared 1MB 4-way L2)",
		"workload", "miss rate of app1", "miss rate of app2",
	)
	for _, r := range rows {
		cells := []string{strings.Join(r.Apps, " + ")}
		for i, app := range r.Apps {
			if i >= 2 {
				break
			}
			cells = append(cells, fmt.Sprintf("%s=%.3f", app, r.MissRate[app]))
		}
		if len(r.Apps) > 2 {
			// The all-four row: list every rate in column 2.
			var parts []string
			for _, app := range r.Apps {
				parts = append(parts, fmt.Sprintf("%s=%.3f", app, r.MissRate[app]))
			}
			cells = []string{strings.Join(r.Apps, "+"), strings.Join(parts, " "), ""}
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)
}

func runFigure5(opt experiments.Options) {
	points, err := experiments.Figure5(opt)
	if err != nil {
		log.Fatal(err)
	}
	var sizes []string
	for _, s := range experiments.Figure5Sizes {
		sizes = append(sizes, addr.Bytes(s))
	}
	graphA := tabletext.NewSeries(
		"Figure 5 Graph A: average deviation from 10% miss-rate goal (all four benchmarks)",
		"size", sizes...)
	graphB := tabletext.NewSeries(
		"Figure 5 Graph B: average deviation from 10% miss-rate goal (art, ammp, parser)",
		"size", sizes...)
	idx := map[uint64]int{}
	for i, s := range experiments.Figure5Sizes {
		idx[s] = i
	}
	for _, p := range points {
		graphA.Set(p.Config, idx[p.Size], p.DeviationA)
		graphB.Set(p.Config, idx[p.Size], p.DeviationB)
	}
	fmt.Println(graphA)
	fmt.Println(graphB)
}

func renderTable2(t2 *experiments.Table2Result) {
	t := tabletext.New(
		"Table 2: average deviation from the 25% miss-rate goal (12-benchmark mix)",
		"cache type", "average deviation",
	)
	for _, r := range t2.Rows {
		t.AddRowf(r.Name, r.Deviation)
	}
	fmt.Println(t)
}

func renderFigure6(f6 *experiments.Figure6Result) {
	randy := tabletext.NewBarChart(
		"Figure 6: hit rate contribution per molecule (log scale) - Randy", true, 46)
	random := tabletext.NewBarChart(
		"Figure 6: hit rate contribution per molecule (log scale) - Random", true, 46)
	for _, r := range f6.Rows {
		randy.Add(r.Benchmark, r.RandyHPM)
		random.Add(r.Benchmark, r.RandomHPM)
	}
	fmt.Println(randy)
	fmt.Println(random)
	fmt.Printf("aggregate: %s\n\n", f6)
}

func renderTable4(t4 *experiments.Table4Result) {
	fmt.Println("Table 3 configuration: 8MB molecular, 8KB molecules, 512KB tiles,")
	fmt.Println("4 tile-clusters x 4 tiles, 1 port per cluster; traditional: 8MB, 4 ports.")
	fmt.Printf("Measured mixed-workload average probes/access: %.1f molecules\n\n", t4.AvgProbes)
	t := tabletext.New(
		"Table 4: power at 70nm (molecular compared at each traditional frequency)",
		"cache type", "freq (MHz)", "power (W)", "mol. worst case (W)", "mol. average (W)",
	)
	for _, r := range t4.Rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.0f", r.FreqMHz),
			fmt.Sprintf("%.2f", r.PowerW),
			fmt.Sprintf("%.2f", r.MolWorstW),
			fmt.Sprintf("%.2f", r.MolAvgW))
	}
	fmt.Println(t)
}

func renderTable5(rows []experiments.Table5Row) {
	t := tabletext.New(
		"Table 5: power-deviation product (vs 6MB Molecular Randy)",
		"cache type", "power-deviation product", "molecular power-deviation product",
	)
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.3f", r.TradPD), fmt.Sprintf("%.3f", r.MolPD))
	}
	fmt.Println(t)
}

func renderHeadline(h *experiments.Headline) {
	fmt.Printf("Headline: vs the equivalently performing traditional cache (%s,\n", h.Baseline)
	fmt.Printf("deviation %.3f vs molecular %.3f), the molecular cache draws %.2f W\n",
		h.BaselineDev, h.MolecularDev, h.MolecularW)
	fmt.Printf("against %.2f W at the same frequency: a %.1f%% power advantage\n",
		h.BaselineW, h.AdvantagePct)
	fmt.Printf("(the paper reports 29%%).\n")
	os.Stdout.Sync()
}
