// Command experiments reproduces every table and figure of the paper's
// evaluation section and prints them in the paper's layout.
//
// Usage:
//
//	experiments [-run all|table1|figure5|related|table2|figure6|table4|table5|headline]
//	            [-refs N] [-seed S] [-jobs N]
//
// -refs is the number of processor-side references driven through the
// CMP substrate per experiment (default 48M, which yields L2 traces of
// roughly the paper's 3.9M-reference scale). -jobs fans each
// experiment's independent simulation points across workers; the output
// is byte-identical at any worker count.
package main

import (
	"flag"
	"log"
	"os"
	"strings"

	"molcache/internal/experiments"
	"molcache/internal/obs"
	"molcache/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	run := flag.String("run", "all", "experiment to run: all, table1, figure5, related, table2, figure6, table4, table5, headline")
	refs := flag.Int("refs", 0, "processor references per experiment (0 = default 48M)")
	seed := flag.Uint64("seed", 0, "simulation seed (0 = default)")
	jobs := flag.Int("jobs", 0, "parallel simulation jobs per experiment (0 = GOMAXPROCS, 1 = serial)")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	var prof telemetry.ProfileConfig
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	pipe, err := obsFlags.Setup()
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()
	if pipe.Server != nil {
		log.Printf("introspection server on http://%s (scheduler events and metrics; no region topology here — that is molsim -serve)", pipe.Server.Addr())
	}

	opt := experiments.Options{ProcessorRefs: *refs, Seed: *seed, Jobs: *jobs,
		Tracer: pipe.Tracer, Registry: pipe.Registry}
	want := strings.ToLower(*run)
	valid := map[string]bool{
		"all": true, "table1": true, "figure5": true, "table2": true,
		"figure6": true, "table4": true, "table5": true, "headline": true,
		"related": true,
	}
	if !valid[want] {
		log.Fatalf("unknown -run %q", *run)
	}
	all := want == "all"

	if all || want == "table1" {
		rows, err := experiments.Table1(opt)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderTable1(os.Stdout, rows)
	}
	if all || want == "figure5" {
		points, err := experiments.Figure5(opt)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderFigure5(os.Stdout, points)
	}
	if all || want == "related" {
		rows, err := experiments.RelatedWork(opt)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderRelatedWork(os.Stdout, rows)
	}
	// table2 feeds figure6, table4, table5 and the headline; compute it
	// once when any of them is requested.
	needT2 := all || want == "table2" || want == "figure6" ||
		want == "table4" || want == "table5" || want == "headline"
	if !needT2 {
		return
	}
	t2, err := experiments.Table2(opt)
	if err != nil {
		log.Fatal(err)
	}
	if all || want == "table2" {
		experiments.RenderTable2(os.Stdout, t2)
	}
	if all || want == "figure6" {
		experiments.RenderFigure6(os.Stdout, experiments.Figure6(t2))
	}
	needT4 := all || want == "table4" || want == "table5" || want == "headline"
	if !needT4 {
		return
	}
	t4, err := experiments.Table4(opt, t2)
	if err != nil {
		log.Fatal(err)
	}
	if all || want == "table4" {
		experiments.RenderTable4(os.Stdout, t4)
	}
	if all || want == "table5" {
		t5, err := experiments.Table5(opt, t2, t4)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderTable5(os.Stdout, t5)
	}
	if all || want == "headline" {
		h, err := experiments.ComputeHeadline(t2, t4)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderHeadline(os.Stdout, h)
	}
}
