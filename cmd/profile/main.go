// Command profile computes per-application LRU miss-ratio curves
// (Mattson stack distances) from a workload mix's L1-miss stream, prints
// working-set knees, and derives an oracle static partition for a target
// cache size — the strongest static baseline a dynamic partitioner can
// be compared against.
//
// Usage:
//
//	profile -mix art,mcf,ammp,parser -refs 8000000 -size 2MB -goal 0.10
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/cmp"
	"molcache/internal/stackdist"
	"molcache/internal/tabletext"
	"molcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profile: ")
	mix := flag.String("mix", "art,mcf,ammp,parser", "comma-separated workload names")
	refs := flag.Int("refs", 8_000_000, "processor references to drive")
	size := flag.String("size", "2MB", "target cache size for the oracle partition")
	goal := flag.Float64("goal", 0.10, "miss-rate goal for the oracle partition")
	chunkKB := flag.Int("chunk", 8, "oracle allocation granularity in KB")
	seed := flag.Uint64("seed", 2006, "simulation seed")
	flag.Parse()

	targetBytes, err := parseSize(*size)
	if err != nil {
		log.Fatal(err)
	}

	// Capture the L1-miss stream (the reference stream an L2 sees).
	l2 := cache.MustNew(cache.Config{Size: 1 * addr.MB, Ways: 4, LineSize: 64})
	sys, err := cmp.New(l2, cmp.Config{CaptureL1Misses: true})
	if err != nil {
		log.Fatal(err)
	}
	names := map[uint16]string{}
	var asids []uint16
	for i, name := range strings.Split(*mix, ",") {
		name = strings.TrimSpace(name)
		asid := uint16(i + 1)
		gen, err := workload.New(name, uint64(asid)<<36, *seed+uint64(asid)*1000)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.AddCore(asid, gen); err != nil {
			log.Fatal(err)
		}
		names[asid] = name
		asids = append(asids, asid)
	}
	sys.Run(*refs)

	prof := stackdist.New(64)
	for _, r := range sys.Captured() {
		prof.Record(r.ASID, r.Addr)
	}

	// Per-application curves, sampled at cache-relevant sizes.
	samples := []uint64{64 * addr.KB, 256 * addr.KB, 512 * addr.KB,
		1 * addr.MB, 2 * addr.MB, 4 * addr.MB}
	headers := []string{"app", "L2 refs", "footprint"}
	for _, s := range samples {
		headers = append(headers, "miss@"+addr.Bytes(s))
	}
	t := tabletext.New("LRU miss-ratio curves (from the L1-miss stream)", headers...)
	curves := map[uint16]*stackdist.Curve{}
	goals := map[uint16]float64{}
	for _, asid := range asids {
		c, err := prof.Curve(asid)
		if err != nil {
			log.Fatal(err)
		}
		curves[asid] = c
		goals[asid] = *goal
		cells := []string{
			names[asid],
			fmt.Sprintf("%d", c.Refs),
			addr.Bytes(uint64(c.Footprint) * 64),
		}
		for _, s := range samples {
			cells = append(cells, fmt.Sprintf("%.3f", c.MissRateAt(int(s/64))))
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)

	// The oracle partition for the target size.
	alloc, err := stackdist.OraclePartition(curves, goals,
		int(targetBytes/64), *chunkKB*1024/64)
	if err != nil {
		log.Fatal(err)
	}
	ot := tabletext.New(
		fmt.Sprintf("Oracle static partition of %s (goal %.0f%%)", addr.Bytes(targetBytes), *goal*100),
		"app", "allocation", "predicted miss", "meets goal")
	for _, asid := range asids {
		meets := "no"
		if alloc.PredictedMiss[asid] <= *goal {
			meets = "yes"
		}
		ot.AddRow(names[asid],
			addr.Bytes(uint64(alloc.Lines[asid])*64),
			fmt.Sprintf("%.3f", alloc.PredictedMiss[asid]),
			meets)
	}
	fmt.Println(ot)
	fmt.Printf("predicted average deviation: %.4f\n", alloc.PredictedDeviation)
}

func parseSize(s string) (uint64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mul := uint64(1)
	switch {
	case strings.HasSuffix(u, "MB"):
		mul, u = addr.MB, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mul, u = addr.KB, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseUint(u, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mul, nil
}
