package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"molcache/internal/analysis"
)

// molvet runs the CLI in-process against the repository root and
// returns (exit, stdout, stderr).
func molvet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-C", root}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUnknownRuleExitsWithKnownList(t *testing.T) {
	code, _, stderr := molvet(t, "-rules", "bogus", "./internal/analysis")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown rule "bogus"`) {
		t.Errorf("stderr does not name the bad rule: %s", stderr)
	}
	// The error must enumerate every registered rule so the user can
	// correct the spelling without another round trip.
	for _, name := range analysis.RuleNames() {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr is missing known rule %s: %s", name, stderr)
		}
	}
}

func TestRulesFlagAcceptsRegisteredSubset(t *testing.T) {
	code, stdout, stderr := molvet(t, "-rules", "lane-confinement,lock-order", "./internal/shard")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
}

func TestListPrintsEveryRule(t *testing.T) {
	code, stdout, _ := molvet(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	names := analysis.RuleNames()
	if len(lines) != len(names) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(names), stdout)
	}
	for i, name := range names {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
}

// TestSweepIsCleanJSON runs the full production sweep the way CI does
// and requires the canonical empty-baseline output: exit 0 and a JSON
// empty array.
func TestSweepIsCleanJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	code, stdout, stderr := molvet(t, "-json", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostics array: %v\n%s", err, stdout)
	}
	if len(diags) != 0 {
		t.Errorf("sweep produced %d findings, want 0:\n%s", len(diags), stdout)
	}
}
