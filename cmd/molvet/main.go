// molvet is the repository's project-aware static analyzer: it loads
// the module with the standard library's go/parser + go/types (no
// external dependencies) and enforces the contracts the simulator's
// reproducibility rests on — determinism, concurrency confinement,
// telemetry naming, and error discipline. See internal/analysis for the
// rules and README "Static analysis" for the rationale.
//
// Usage:
//
//	molvet [-json] [-rules r1,r2] [-C dir] [packages...]
//
// Packages are ./...-style patterns (default ./...). Exit status: 0
// clean, 1 findings, 2 operational failure. Suppress a single finding
// with `//molvet:ignore rule-name reason` on or above the line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"molcache/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("molvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	ruleList := fs.String("rules", "", "comma-separated subset of rules to run (default all)")
	list := fs.Bool("list", false, "list the registered rules and exit")
	chdir := fs.String("C", "", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range analysis.Rules() {
			fmt.Fprintf(stdout, "%-16s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	wd := *chdir
	if wd == "" {
		var err error
		wd, err = os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "molvet:", err)
			return 2
		}
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "molvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "molvet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expandPatterns(loader, wd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "molvet:", err)
		return 2
	}

	var names []string
	if *ruleList != "" {
		names = strings.Split(*ruleList, ",")
		for _, n := range names {
			if !known(n) {
				fmt.Fprintf(stderr, "molvet: unknown rule %q; known rules: %s\n",
					n, strings.Join(analysis.RuleNames(), ", "))
				return 2
			}
		}
	}

	cfg := analysis.DefaultConfig()
	var diags []analysis.Diagnostic
	var loaded []*analysis.Package
	failed := false
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(stderr, "molvet:", err)
			failed = true
			continue
		}
		loaded = append(loaded, pkg)
		diags = append(diags, analysis.Run(cfg, pkg, names)...)
	}
	// Cross-package dataflow rules run once over the whole sweep: they
	// need the shared call graph, not a single package's AST.
	if len(loaded) > 0 {
		mod := analysis.NewModule(loaded)
		diags = append(diags, analysis.RunModule(cfg, mod, names)...)
		analysis.Sort(diags)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "molvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, rel(root, d))
		}
	}
	switch {
	case failed:
		return 2
	case len(diags) > 0:
		if !*jsonOut {
			fmt.Fprintf(stderr, "molvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// known reports whether a rule name is registered.
func known(name string) bool {
	for _, n := range analysis.RuleNames() {
		if n == name {
			return true
		}
	}
	return false
}

// rel renders a diagnostic with a module-root-relative path.
func rel(root string, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(root, d.File); err == nil && !strings.HasPrefix(r, "..") {
		d.File = r
	}
	return d.String()
}

// expandPatterns turns ./...-style patterns into import paths.
func expandPatterns(l *analysis.Loader, wd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(paths ...string) {
		for _, p := range paths {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			dir := rest
			if dir == "." || dir == "" {
				dir = wd
			} else if !filepath.IsAbs(dir) {
				dir = filepath.Join(wd, dir)
			}
			paths, err := l.DiscoverPackages(dir)
			if err != nil {
				return nil, err
			}
			if len(paths) == 0 {
				return nil, fmt.Errorf("molvet: no packages match %s", pat)
			}
			add(paths...)
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(wd, dir)
		}
		ip, err := importPathFor(l, dir)
		if err != nil {
			return nil, err
		}
		add(ip)
	}
	return out, nil
}

// importPathFor maps a directory to its module import path.
func importPathFor(l *analysis.Loader, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	r, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(r, "..") {
		return "", fmt.Errorf("molvet: %s is outside module %s", dir, l.ModulePath)
	}
	if r == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(r), nil
}
