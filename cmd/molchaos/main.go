// Command molchaos is the crash/restore soak harness for the MOLC1
// checkpoint path. Each iteration draws a random cache geometry, an
// optional random fault campaign and a randomized reference trace, then
// runs two simulators over the same trace:
//
//   - the reference runs uninterrupted;
//   - the victim is checkpointed periodically, killed at random points,
//     restored from its latest checkpoint, and replays from there.
//
// Every victim access after every restore must reproduce the reference
// result exactly; final ledgers, structural captures and the full
// invariant suite must agree. Each iteration additionally fuzzes the
// final checkpoint image with random bit flips, truncations and zeroed
// ranges: every mutation must fail restore with a typed snapshot error —
// never a panic, never a silent success.
//
// On any failure molchaos writes a minimized repro bundle (meta.json
// with the iteration seed and geometry, campaign.json, the offending
// snapshot, and the trace slice around the divergence) under -out and
// exits nonzero. Reproduce a bundle with:
//
//	molchaos -iter-seed <seed from meta.json>
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"molcache"
	"molcache/internal/faults"
	"molcache/internal/invariant"
	"molcache/internal/molecular"
	"molcache/internal/noc"
	"molcache/internal/resize"
	"molcache/internal/rng"
	"molcache/internal/snapshot"
	"molcache/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("molchaos: ")
	seed := flag.Uint64("seed", 20060101, "master seed for the campaign sequence")
	iterations := flag.Int("iterations", 0, "iterations to run (0: bounded by -duration)")
	duration := flag.Duration("duration", 30*time.Second, "wall-clock budget when -iterations is 0")
	accesses := flag.Int("accesses", 12_000, "trace length per iteration")
	mutations := flag.Int("mutations", 24, "snapshot corruption probes per iteration")
	out := flag.String("out", "soak-artifacts", "directory for repro bundles on failure")
	iterSeed := flag.Uint64("iter-seed", 0, "run exactly one iteration with this seed (repro mode)")
	verbose := flag.Bool("v", false, "log one line per iteration")
	flag.Parse()

	if *iterSeed != 0 {
		if fail := runIteration(*iterSeed, *accesses, *mutations, *out, 0); fail != nil {
			log.Fatalf("FAIL: %s (bundle: %s)", fail.reason, fail.bundle)
		}
		log.Printf("iteration with seed %d: ok", *iterSeed)
		return
	}

	start := time.Now()
	iter := 0
	for {
		if *iterations > 0 && iter >= *iterations {
			break
		}
		if *iterations == 0 && time.Since(start) >= *duration {
			break
		}
		s := rng.DeriveSeed(*seed, uint64(iter))
		if fail := runIteration(s, *accesses, *mutations, *out, iter); fail != nil {
			log.Fatalf("FAIL at iteration %d (seed %d): %s\nrepro bundle: %s\nreproduce with: molchaos -iter-seed %d",
				iter, s, fail.reason, fail.bundle, s)
		}
		if *verbose {
			log.Printf("iteration %d (seed %d): ok", iter, s)
		}
		iter++
	}
	log.Printf("soak clean: %d iterations in %s", iter, time.Since(start).Round(time.Millisecond))
}

// chaosSetup is one iteration's randomized scenario, recorded verbatim
// into repro bundles.
type chaosSetup struct {
	Seed      uint64           `json:"seed"`
	Iteration int              `json:"iteration"`
	Config    molecular.Config `json:"config"`
	Resize    resize.Config    `json:"resize"`
	Faults    bool             `json:"faults"`
	Accesses  int              `json:"accesses"`
}

// failure describes one soak failure after its bundle has been written.
type failure struct {
	reason string
	bundle string
}

// runIteration executes one randomized kill/restore campaign. A nil
// return means the iteration was clean.
func runIteration(seed uint64, accesses, mutations int, out string, iter int) *failure {
	src := rng.New(seed)
	setup := chaosSetup{
		Seed:      seed,
		Iteration: iter,
		Config:    genConfig(src),
		Resize:    genResizeConfig(src),
		Faults:    src.Intn(2) == 1,
		Accesses:  accesses,
	}
	var campaign *faults.Campaign
	if setup.Faults {
		c := genCampaign(src, uint64(accesses))
		campaign = &c
	}
	refs := genTrace(src, accesses)

	bundle := func(reason string, snap []byte, divergeAt int) *failure {
		dir, err := writeBundle(out, iter, reason, setup, campaign, snap, refs, divergeAt)
		if err != nil {
			log.Printf("writing repro bundle: %v", err)
			dir = "(bundle write failed)"
		}
		return &failure{reason: reason, bundle: dir}
	}

	ref, err := buildSim(setup, campaign)
	if err != nil {
		return bundle(fmt.Sprintf("building reference simulator: %v", err), nil, -1)
	}
	victim, err := buildSim(setup, campaign)
	if err != nil {
		return bundle(fmt.Sprintf("building victim simulator: %v", err), nil, -1)
	}

	// Reference leg: uninterrupted, results recorded for replay checks.
	want := make([]molcache.AccessResult, len(refs))
	for i, r := range refs {
		want[i] = ref.Access(r)
	}

	// Victim leg: checkpoint every ckEvery accesses, die at each kill
	// point, restore from the latest checkpoint and replay from there.
	ckEvery := 500 + src.Intn(2_000)
	kills := map[int]bool{}
	for n := 1 + src.Intn(3); n > 0; n-- {
		kills[1+src.Intn(len(refs))] = true
	}
	ckBytes, err := victim.EncodeCheckpoint() // initial-state checkpoint
	if err != nil {
		return bundle(fmt.Sprintf("initial checkpoint: %v", err), nil, 0)
	}
	ckAt := 0
	for i := 0; i < len(refs); {
		if got := victim.Access(refs[i]); got != want[i] {
			return bundle(fmt.Sprintf("divergence at access %d: reference %+v, victim %+v",
				i, want[i], got), ckBytes, i)
		}
		i++
		if i%ckEvery == 0 {
			ckBytes, err = victim.EncodeCheckpoint()
			if err != nil {
				return bundle(fmt.Sprintf("checkpoint at access %d: %v", i, err), nil, i)
			}
			ckAt = i
		}
		if kills[i] {
			delete(kills, i) // die once per kill point
			restored, err := molcache.RestoreSimulatorBytes(ckBytes, nil, molcache.NewRegistry())
			if err != nil {
				return bundle(fmt.Sprintf("restore after kill at access %d (checkpoint at %d): %v",
					i, ckAt, err), ckBytes, i)
			}
			victim = restored
			i = ckAt
		}
	}

	// End-state agreement: ledgers, structural captures, invariants.
	if a, b := *ref.Cache.Ledger(), *victim.Cache.Ledger(); a.Total != b.Total {
		return bundle(fmt.Sprintf("final ledgers diverged: reference %+v, victim %+v",
			a.Total, b.Total), ckBytes, len(refs)-1)
	}
	if vs := victim.CheckInvariants(); len(vs) > 0 {
		return bundle(fmt.Sprintf("victim end state violates invariant %s: %s",
			vs[0].Rule, vs[0].Detail), ckBytes, len(refs)-1)
	}

	// File-path round trip: the crash-safe writer and the file restore
	// must reproduce the victim's structural capture exactly.
	final, err := victim.EncodeCheckpoint()
	if err != nil {
		return bundle(fmt.Sprintf("final checkpoint: %v", err), nil, len(refs)-1)
	}
	dir, err := os.MkdirTemp("", "molchaos-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "final.molc")
	if err := victim.Checkpoint(path); err != nil {
		return bundle(fmt.Sprintf("Checkpoint(%s): %v", path, err), final, len(refs)-1)
	}
	fromFile, err := molcache.RestoreSimulator(path, nil, molcache.NewRegistry())
	if err != nil {
		return bundle(fmt.Sprintf("RestoreSimulator(%s): %v", path, err), final, len(refs)-1)
	}
	vc, fc := invariant.CaptureCache(victim.Cache), invariant.CaptureCache(fromFile.Cache)
	if !capturesEqual(vc, fc) {
		return bundle("file round trip changed the structural capture", final, len(refs)-1)
	}

	// Corruption probes: every mutated image must fail with a typed
	// snapshot error; a panic or a silent success is a finding.
	for m := 0; m < mutations; m++ {
		damaged := mutateSnapshot(src, final)
		if reason := probeRestore(damaged); reason != "" {
			return bundle(fmt.Sprintf("corruption probe %d: %s", m, reason), damaged, -1)
		}
	}
	return nil
}

// probeRestore attempts a restore of a damaged image and reports why it
// was unacceptable ("" means the image was rejected cleanly).
func probeRestore(damaged []byte) (reason string) {
	defer func() {
		if r := recover(); r != nil {
			reason = fmt.Sprintf("restore panicked: %v", r)
		}
	}()
	_, err := molcache.RestoreSimulatorBytes(damaged, nil, molcache.NewRegistry())
	if err == nil {
		return "damaged snapshot restored without error"
	}
	var se *molcache.SnapshotError
	if !errors.As(err, &se) {
		return fmt.Sprintf("restore error is not a typed *SnapshotError: %v", err)
	}
	return ""
}

// mutateSnapshot damages a copy of the image: a random bit flip, a
// truncation, or a zeroed range.
func mutateSnapshot(src *rng.Source, data []byte) []byte {
	d := append([]byte(nil), data...)
	switch src.Intn(3) {
	case 0: // bit flip
		d[src.Intn(len(d))] ^= 1 << uint(src.Intn(8))
	case 1: // truncation (always shorter than the original)
		d = d[:src.Intn(len(d))]
	default: // zeroed range
		off := src.Intn(len(d))
		end := off + 1 + src.Intn(64)
		if end > len(d) {
			end = len(d)
		}
		zeroed := false
		for i := off; i < end; i++ {
			if d[i] != 0 {
				zeroed = true
			}
			d[i] = 0
		}
		if !zeroed { // range was already zero; flip a bit instead
			d[src.Intn(len(d))] ^= 0x80
		}
	}
	return d
}

// capturesEqual compares two structural captures via their JSON forms
// (the capture types carry maps; JSON canonicalizes them).
func capturesEqual(a, b invariant.Snapshot) bool {
	aj, errA := json.Marshal(a)
	bj, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(aj) == string(bj)
}

// genConfig draws a random cache geometry.
func genConfig(src *rng.Source) molecular.Config {
	policies := []molecular.ReplacementKind{
		molecular.RandomReplacement, molecular.RandyReplacement, molecular.LRUDirect,
	}
	sizes := []uint64{512 << 10, 1 << 20}
	return molecular.Config{
		TotalSize:       sizes[src.Intn(len(sizes))],
		MoleculeSize:    8 << 10,
		TilesPerCluster: 2 + 2*src.Intn(2), // 2 or 4
		Clusters:        1 + src.Intn(2),   // 1 or 2
		Policy:          policies[src.Intn(len(policies))],
		LineFactor:      1 + src.Intn(2),
		Seed:            src.Uint64(),
	}
}

// genResizeConfig draws the controller configuration (with the post-pass
// invariant audit on — the soak wants every check the model has).
func genResizeConfig(src *rng.Source) resize.Config {
	return resize.Config{
		Period:        300 + uint64(src.Intn(3))*100,
		MinPeriod:     200,
		MaxPeriod:     5_000,
		MaxAllocation: 3 + src.Intn(3),
		DefaultGoal:   0.1 + float64(src.Intn(4))*0.05,
		DebugCheck:    true,
	}
}

// genCampaign draws a random fault schedule over the run.
func genCampaign(src *rng.Source, accesses uint64) faults.Campaign {
	c := faults.Campaign{
		Seed: src.Uint64(),
		RandomMoleculeFailures: &faults.RandomSpec{
			Count: 1 + src.Intn(3), Start: accesses / 10, End: accesses,
		},
		RandomLineCorruptions: &faults.RandomSpec{
			Count: 2 + src.Intn(8), Start: accesses / 10, End: accesses,
		},
	}
	for n := 1 + src.Intn(2); n > 0; n-- {
		at := uint64(src.Intn(int(accesses * 3 / 4)))
		c.NoCDelays = append(c.NoCDelays, faults.NoCDelay{
			At: at, Duration: uint64(100 + src.Intn(400)),
			ExtraCycles: uint64(1 + src.Intn(5)), DropAttempts: src.Intn(7),
		})
	}
	return c
}

// genTrace draws the reference stream: 2-3 private applications with
// hot sets and long tails, a trickle of shared traffic, 30% writes.
func genTrace(src *rng.Source, n int) []trace.Ref {
	apps := 2 + src.Intn(2)
	refs := make([]trace.Ref, 0, n)
	for i := 0; i < n; i++ {
		var asid uint16
		if src.Intn(32) == 0 {
			asid = molecular.SharedASID
		} else {
			asid = uint16(1 + src.Intn(apps))
		}
		var block uint64
		if src.Intn(4) > 0 {
			block = uint64(src.Intn(512))
		} else {
			block = uint64(src.Intn(8192))
		}
		kind := trace.Read
		if src.Intn(10) < 3 {
			kind = trace.Write
		}
		refs = append(refs, trace.Ref{Addr: uint64(asid)<<32 | block*64, ASID: asid, Kind: kind})
	}
	return refs
}

// buildSim assembles one side: cache, shared region, mesh, optional
// fault injector, controller and a live registry — the full attachment
// surface a checkpoint must carry.
func buildSim(setup chaosSetup, campaign *faults.Campaign) (*molcache.Simulator, error) {
	c, err := molecular.New(setup.Config)
	if err != nil {
		return nil, err
	}
	if _, err := c.CreateRegion(molecular.SharedASID, molecular.RegionOptions{
		HomeCluster: 0, HomeTile: 0, InitialMolecules: 2,
	}); err != nil {
		return nil, err
	}
	mesh, err := noc.ForTiles(setup.Config.Clusters * setup.Config.TilesPerCluster)
	if err != nil {
		return nil, err
	}
	if err := c.AttachInterconnect(mesh); err != nil {
		return nil, err
	}
	if campaign != nil {
		inj, err := faults.NewInjector(*campaign)
		if err != nil {
			return nil, err
		}
		if err := c.AttachFaults(inj); err != nil {
			return nil, err
		}
	}
	ctrl, err := resize.New(c, setup.Resize)
	if err != nil {
		return nil, err
	}
	sim := &molcache.Simulator{Cache: c, Controller: ctrl}
	sim.AttachTelemetry(nil, molcache.NewRegistry())
	return sim, nil
}

// writeBundle lands a minimized repro bundle: the scenario, the fault
// campaign, the offending snapshot image and the trace slice around the
// divergence point.
func writeBundle(out string, iter int, reason string, setup chaosSetup,
	campaign *faults.Campaign, snap []byte, refs []trace.Ref, divergeAt int) (string, error) {
	dir := filepath.Join(out, fmt.Sprintf("iter%03d", iter))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	meta := struct {
		Reason    string     `json:"reason"`
		Setup     chaosSetup `json:"setup"`
		DivergeAt int        `json:"diverge_at"`
	}{Reason: reason, Setup: setup, DivergeAt: divergeAt}
	mj, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), mj, 0o644); err != nil {
		return "", err
	}
	if campaign != nil {
		cj, err := json.MarshalIndent(campaign, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dir, "campaign.json"), cj, 0o644); err != nil {
			return "", err
		}
	}
	if len(snap) > 0 {
		if err := snapshot.WriteRaw(filepath.Join(dir, "snapshot.molc"), snap); err != nil {
			return "", err
		}
	}
	if divergeAt >= 0 && len(refs) > 0 {
		lo, hi := divergeAt-50, divergeAt+10
		if lo < 0 {
			lo = 0
		}
		if hi > len(refs) {
			hi = len(refs)
		}
		slice := struct {
			FirstIndex int         `json:"first_index"`
			Refs       []trace.Ref `json:"refs"`
		}{FirstIndex: lo, Refs: refs[lo:hi]}
		sj, err := json.MarshalIndent(slice, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dir, "trace_slice.json"), sj, 0o644); err != nil {
			return "", err
		}
	}
	return dir, nil
}
