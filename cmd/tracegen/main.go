// Command tracegen records L1-miss (L2 reference) traces from the
// workload models, in the binary format internal/trace defines — the
// equivalent of the paper's SESC-to-Dinero trace hand-off.
//
// Usage:
//
//	tracegen -mix art,mcf,ammp,parser -refs 48000000 -o spec4.mtr
//	tracegen -dump spec4.mtr            # print a trace as text
//	tracegen -raw -mix CRC -refs 100000 # processor-level (no L1 filter)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"molcache/internal/addr"
	"molcache/internal/cache"
	"molcache/internal/cmp"
	"molcache/internal/trace"
	"molcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	mix := flag.String("mix", "", "comma-separated workload names")
	refs := flag.Int("refs", 4_000_000, "processor references to drive")
	out := flag.String("o", "", "output file (default stdout as text)")
	dump := flag.String("dump", "", "dump an existing binary trace as text and exit")
	raw := flag.Bool("raw", false, "record processor references instead of L1 misses")
	seed := flag.Uint64("seed", 2006, "simulation seed")
	flag.Parse()

	if *dump != "" {
		dumpTrace(*dump)
		return
	}
	if *mix == "" {
		log.Fatal("need -mix (or -dump)")
	}

	refsOut := generate(*mix, *refs, *raw, *seed)
	if *out == "" {
		if err := trace.WriteText(os.Stdout, refsOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, r := range refsOut {
		if err := w.Write(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", w.Count(), *out)
}

// generate produces either the L1-miss stream (paper methodology) or the
// raw processor stream.
func generate(mix string, refs int, raw bool, seed uint64) []trace.Ref {
	names := strings.Split(mix, ",")
	if raw {
		var streams [][]trace.Ref
		for i, name := range names {
			asid := uint16(i + 1)
			gen, err := workload.New(strings.TrimSpace(name), uint64(asid)<<36, seed+uint64(asid)*1000)
			if err != nil {
				log.Fatal(err)
			}
			n := refs / len(names)
			s := make([]trace.Ref, n)
			for j := 0; j < n; j++ {
				a := gen.Next()
				s[j] = trace.Ref{Addr: a.Addr, ASID: asid, CPU: uint8(i), Kind: trace.Read}
				if a.Write {
					s[j].Kind = trace.Write
				}
			}
			streams = append(streams, s)
		}
		return trace.Interleave(streams...)
	}
	l2 := cache.MustNew(cache.Config{Size: 1 * addr.MB, Ways: 4, LineSize: 64})
	sys, err := cmp.New(l2, cmp.Config{CaptureL1Misses: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range names {
		asid := uint16(i + 1)
		gen, err := workload.New(strings.TrimSpace(name), uint64(asid)<<36, seed+uint64(asid)*1000)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.AddCore(asid, gen); err != nil {
			log.Fatal(err)
		}
	}
	sys.Run(refs)
	return sys.Captured()
}

func dumpTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	refs, err := r.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteText(os.Stdout, refs); err != nil {
		log.Fatal(err)
	}
}
