package molcache_test

import (
	"testing"

	"molcache"
)

func TestFacadeQuickPath(t *testing.T) {
	sim, err := molcache.NewSimulator(
		molcache.MolecularConfig{TotalSize: 1 << 20, Seed: 1},
		molcache.ResizeConfig{DefaultGoal: 0.10},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Two applications with disjoint hot sets.
	for i := 0; i < 200000; i++ {
		a := uint64(i%2048) * 64
		sim.Access(molcache.Ref{Addr: a, ASID: 1, Kind: molcache.Read})
		sim.Access(molcache.Ref{Addr: 1<<36 + a, ASID: 2, Kind: molcache.Write})
	}
	led := sim.Cache.Ledger()
	for _, asid := range []uint16{1, 2} {
		if mr := led.App(asid).MissRate(); mr > 0.05 {
			t.Errorf("app %d miss rate = %.3f, want hot-loop hit behaviour", asid, mr)
		}
	}
	if err := sim.Cache.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if len(sim.Controller.Events()) == 0 {
		t.Error("controller never ran")
	}
}

func TestFacadeTraditional(t *testing.T) {
	c, err := molcache.NewTraditional(molcache.TraditionalConfig{
		Size: 1 << 20, Ways: 4, LineSize: 64, Policy: molcache.LRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(molcache.Ref{Addr: 64}).Hit {
		t.Error("cold hit")
	}
	if !c.Access(molcache.Ref{Addr: 64}).Hit {
		t.Error("warm miss")
	}
}

func TestFacadeSystem(t *testing.T) {
	l2, err := molcache.NewTraditional(molcache.TraditionalConfig{
		Size: 1 << 20, Ways: 4, LineSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := molcache.NewSystem(l2, molcache.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := molcache.NewWorkload("ammp", 1<<36, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCore(1, gen); err != nil {
		t.Fatal(err)
	}
	sys.Run(100000)
	if sys.L1Ledger().App(1).Accesses() != 100000 {
		t.Error("core did not issue the requested references")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := molcache.Workloads()
	if len(names) != 15 {
		t.Errorf("Workloads() = %d entries", len(names))
	}
	if _, err := molcache.NewWorkload("nosuch", 0, 0); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadePower(t *testing.T) {
	e, err := molcache.EstimatePower(molcache.PowerGeometry{
		SizeBytes: 8 << 20, Assoc: 4, LineBytes: 64, Ports: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.AccessEnergy <= 0 || e.CycleTime <= 0 {
		t.Errorf("degenerate estimate %+v", e)
	}
	me, err := molcache.EstimateMolecularPower(molcache.MolecularPowerGeometry{
		TotalBytes: 8 << 20, MoleculeBytes: 8 << 10, LineBytes: 64,
		TileMolecules: 64, PortsPerCluster: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if me.AccessEnergy(8) >= me.WorstCaseEnergy() {
		t.Error("selective enablement missing from facade path")
	}
}

func TestFacadeMetrics(t *testing.T) {
	var l molcache.Ledger
	l.Record(1, false)
	l.Record(1, false)
	l.Record(1, true)
	l.Record(1, true) // miss rate 0.5
	got := molcache.AverageDeviation(&l, molcache.UniformGoals(0.25, 1))
	if got != 0.25 {
		t.Errorf("AverageDeviation = %v, want 0.25", got)
	}
}

func TestFacadeRelatedWorkSchemes(t *testing.T) {
	m, err := molcache.NewModifiedLRU(1<<20, 8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetQuota(1, 64)
	m.Access(molcache.Ref{Addr: 0, ASID: 1})
	if !m.Access(molcache.Ref{Addr: 0, ASID: 1}).Hit {
		t.Error("ModifiedLRU warm miss")
	}
	cc, err := molcache.NewColumnCache(1<<20, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.AssignEqualColumns(1, 2); err != nil {
		t.Fatal(err)
	}
	hb, err := molcache.NewHomeBank(4, 256<<10, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.SetHome(1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMeshAndProfiler(t *testing.T) {
	mesh, err := molcache.MeshForTiles(4)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := molcache.NewMolecular(molcache.MolecularConfig{TotalSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.AttachInterconnect(mesh); err != nil {
		t.Fatal(err)
	}

	p := molcache.NewProfiler(64)
	for sweep := 0; sweep < 4; sweep++ {
		for i := uint64(0); i < 64; i++ {
			p.Record(1, i*64)
		}
	}
	c, err := p.Curve(1)
	if err != nil {
		t.Fatal(err)
	}
	curves := map[uint16]*molcache.MissRatioCurve{1: c}
	alloc, err := molcache.OraclePartition(curves, map[uint16]float64{1: 0.5}, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Lines[1] < 64 {
		t.Errorf("oracle allocated %d lines, want >= the 64-line working set", alloc.Lines[1])
	}
}

func TestFacadeFaultsAndInvariants(t *testing.T) {
	sim, err := molcache.NewSimulator(
		molcache.MolecularConfig{TotalSize: 1 << 20, Seed: 1},
		molcache.ResizeConfig{DefaultGoal: 0.10},
	)
	if err != nil {
		t.Fatal(err)
	}
	err = sim.InjectFaults(molcache.FaultCampaign{
		Seed: 7,
		MoleculeFailures: []molcache.MoleculeFailure{
			{At: 1000, Molecule: 0},
			{At: 2000, Molecule: 1},
		},
		RandomMoleculeFailures: &molcache.FaultRandomSpec{Count: 3, Start: 3000, End: 8000},
		NoCDelays: []molcache.NoCDelay{
			{At: 4000, Duration: 500, ExtraCycles: 5, DropAttempts: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		a := uint64(i%4096) * 64
		sim.Access(molcache.Ref{Addr: a, ASID: 1, Kind: molcache.Read})
		sim.Access(molcache.Ref{Addr: 1<<36 + a, ASID: 2, Kind: molcache.Write})
	}
	if got := sim.FaultStats().MoleculeFailures; got != 5 {
		t.Errorf("delivered %d molecule failures, want 5", got)
	}
	if got := sim.Degradation().RetiredMolecules; got != 5 {
		t.Errorf("retired %d molecules, want 5", got)
	}
	if vs := sim.CheckInvariants(); len(vs) != 0 {
		t.Errorf("invariant violations after faulted run: %v", vs)
	}
	if err := sim.Cache.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Detach: the zero campaign removes injection.
	if err := sim.InjectFaults(molcache.FaultCampaign{}); err != nil {
		t.Fatal(err)
	}
	if sim.Cache.Faults() != nil {
		t.Error("zero campaign did not detach the injector")
	}
}
